"""k-ary Fat-Tree topology (Leiserson; Al-Fares et al. layout).

One of the four fabrics of the paper's Figure 8(b) scalability study.  A
``k``-ary fat-tree has ``k`` pods; each pod contains ``k/2`` edge (access)
switches and ``k/2`` aggregation switches, and ``(k/2)^2`` core switches join
the pods.  Each edge switch serves ``k/2`` servers, for ``k^3 / 4`` servers in
total.  Every server pair in different pods has ``(k/2)^2`` equal-cost paths,
which is exactly the multiplicity Hit-Scheduler's policy optimisation
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Link, Server, Switch, Tier, Topology

__all__ = ["FatTreeConfig", "build_fattree"]


@dataclass(frozen=True)
class FatTreeConfig:
    """Parameters of the ``k``-ary fat-tree.  ``k`` must be even."""

    k: int = 4
    edge_capacity: float = 100.0
    aggregation_capacity: float = 200.0
    core_capacity: float = 400.0
    server_link_bandwidth: float = 10.0
    fabric_link_bandwidth: float = 40.0
    switch_latency: float = 1.0
    server_resources: tuple[float, ...] = (2.0,)

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ValueError("fat-tree k must be an even integer >= 2")

    @property
    def num_servers(self) -> int:
        return self.k**3 // 4


def build_fattree(config: FatTreeConfig | None = None, **kwargs: object) -> Topology:
    """Build a ``k``-ary fat-tree :class:`~repro.topology.base.Topology`."""
    if config is None:
        config = FatTreeConfig(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        raise TypeError("pass either a FatTreeConfig or keyword overrides, not both")

    k = config.k
    half = k // 2
    servers = [
        Server(node_id=i, name=f"s{i}", resource_capacity=config.server_resources)
        for i in range(config.num_servers)
    ]

    switches: list[Switch] = []
    links: list[Link] = []
    next_id = config.num_servers

    # Edge switches: pod p, index e.
    edge_ids: list[list[int]] = []
    for pod in range(k):
        row: list[int] = []
        for e in range(half):
            switches.append(
                Switch(
                    node_id=next_id,
                    name=f"edge{pod}.{e}",
                    tier=Tier.ACCESS,
                    capacity=config.edge_capacity,
                )
            )
            row.append(next_id)
            next_id += 1
        edge_ids.append(row)

    agg_ids: list[list[int]] = []
    for pod in range(k):
        row = []
        for a in range(half):
            switches.append(
                Switch(
                    node_id=next_id,
                    name=f"agg{pod}.{a}",
                    tier=Tier.AGGREGATION,
                    capacity=config.aggregation_capacity,
                )
            )
            row.append(next_id)
            next_id += 1
        agg_ids.append(row)

    core_ids: list[int] = []
    for c in range(half * half):
        switches.append(
            Switch(
                node_id=next_id,
                name=f"core{c}",
                tier=Tier.CORE,
                capacity=config.core_capacity,
            )
        )
        core_ids.append(next_id)
        next_id += 1

    # Servers -> edge: server s belongs to pod s // (half*half), edge
    # (s // half) % half within the pod.
    for server in servers:
        sid = server.node_id
        pod = sid // (half * half)
        edge = (sid // half) % half
        links.append(
            Link(
                u=sid,
                v=edge_ids[pod][edge],
                bandwidth=config.server_link_bandwidth,
                latency=config.switch_latency,
            )
        )

    # Edge <-> aggregation: complete bipartite within a pod.
    for pod in range(k):
        for e_id in edge_ids[pod]:
            for a_id in agg_ids[pod]:
                links.append(
                    Link(
                        u=e_id,
                        v=a_id,
                        bandwidth=config.fabric_link_bandwidth,
                        latency=config.switch_latency,
                    )
                )

    # Aggregation <-> core: agg switch a of any pod connects to cores
    # [a*half, (a+1)*half).
    for pod in range(k):
        for a, a_id in enumerate(agg_ids[pod]):
            for c in range(a * half, (a + 1) * half):
                links.append(
                    Link(
                        u=a_id,
                        v=core_ids[c],
                        bandwidth=config.fabric_link_bandwidth,
                        latency=config.switch_latency,
                    )
                )

    topo = Topology(
        servers=servers,
        switches=switches,
        links=links,
        name=f"fattree(k={k})",
    )
    topo.validate()
    return topo
