"""VL2 topology (Greenberg et al., SIGCOMM 2009).

The second alternative fabric of Figure 8(b).  VL2 is a folded Clos: top-of-
rack (ToR) switches connect to two aggregation switches; aggregation switches
form a complete bipartite graph with the intermediate switches.  The
abundance of intermediate-layer paths (valiant load balancing in the original
system) is what the paper's Probabilistic Network-Aware baseline "cannot
handle" (Section 7.3) — it assumes a single static path, whereas
Hit-Scheduler's policy optimisation picks among the intermediate switches by
residual capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Link, Server, Switch, Tier, Topology

__all__ = ["VL2Config", "build_vl2"]


@dataclass(frozen=True)
class VL2Config:
    """Parameters of the VL2 Clos fabric.

    ``num_intermediate`` (``D_i``) and ``num_aggregation`` (``D_a``) size the
    upper layers; ``num_tor`` ToR switches each host ``servers_per_tor``
    servers and uplink to ``tor_uplinks`` aggregation switches (2 in the
    original design).
    """

    num_intermediate: int = 4
    num_aggregation: int = 4
    num_tor: int = 8
    servers_per_tor: int = 8
    tor_uplinks: int = 2
    tor_capacity: float = 100.0
    aggregation_capacity: float = 200.0
    intermediate_capacity: float = 400.0
    server_link_bandwidth: float = 10.0
    fabric_link_bandwidth: float = 40.0
    switch_latency: float = 1.0
    server_resources: tuple[float, ...] = (2.0,)

    def __post_init__(self) -> None:
        if min(self.num_intermediate, self.num_aggregation, self.num_tor) < 1:
            raise ValueError("VL2 layer sizes must be >= 1")
        if self.servers_per_tor < 1:
            raise ValueError("servers_per_tor must be >= 1")
        if not 1 <= self.tor_uplinks <= self.num_aggregation:
            raise ValueError("tor_uplinks must be in [1, num_aggregation]")

    @property
    def num_servers(self) -> int:
        return self.num_tor * self.servers_per_tor


def build_vl2(config: VL2Config | None = None, **kwargs: object) -> Topology:
    """Build a VL2 :class:`~repro.topology.base.Topology`."""
    if config is None:
        config = VL2Config(**kwargs)  # type: ignore[arg-type]
    elif kwargs:
        raise TypeError("pass either a VL2Config or keyword overrides, not both")

    servers = [
        Server(node_id=i, name=f"s{i}", resource_capacity=config.server_resources)
        for i in range(config.num_servers)
    ]
    switches: list[Switch] = []
    links: list[Link] = []
    next_id = config.num_servers

    tor_ids: list[int] = []
    for t in range(config.num_tor):
        switches.append(
            Switch(
                node_id=next_id,
                name=f"tor{t}",
                tier=Tier.ACCESS,
                capacity=config.tor_capacity,
            )
        )
        tor_ids.append(next_id)
        next_id += 1

    agg_ids: list[int] = []
    for a in range(config.num_aggregation):
        switches.append(
            Switch(
                node_id=next_id,
                name=f"agg{a}",
                tier=Tier.AGGREGATION,
                capacity=config.aggregation_capacity,
            )
        )
        agg_ids.append(next_id)
        next_id += 1

    int_ids: list[int] = []
    for i in range(config.num_intermediate):
        switches.append(
            Switch(
                node_id=next_id,
                name=f"int{i}",
                tier=Tier.CORE,
                capacity=config.intermediate_capacity,
            )
        )
        int_ids.append(next_id)
        next_id += 1

    # Servers -> their ToR.
    for server in servers:
        tor = server.node_id // config.servers_per_tor
        links.append(
            Link(
                u=server.node_id,
                v=tor_ids[tor],
                bandwidth=config.server_link_bandwidth,
                latency=config.switch_latency,
            )
        )

    # ToR -> tor_uplinks aggregation switches, round-robin so load spreads.
    for t, tor_id in enumerate(tor_ids):
        for u in range(config.tor_uplinks):
            agg = (t + u) % config.num_aggregation
            links.append(
                Link(
                    u=tor_id,
                    v=agg_ids[agg],
                    bandwidth=config.fabric_link_bandwidth,
                    latency=config.switch_latency,
                )
            )

    # Aggregation <-> intermediate: complete bipartite (VL2's defining mesh).
    for a_id in agg_ids:
        for i_id in int_ids:
            links.append(
                Link(
                    u=a_id,
                    v=i_id,
                    bandwidth=config.fabric_link_bandwidth,
                    latency=config.switch_latency,
                )
            )

    topo = Topology(
        servers=servers,
        switches=switches,
        links=links,
        name=(
            f"vl2(Di={config.num_intermediate},Da={config.num_aggregation},"
            f"tor={config.num_tor})"
        ),
    )
    topo.validate()
    return topo
