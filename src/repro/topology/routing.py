"""Routing utilities: equal-cost path structure for policy optimisation.

A network *policy* in the paper (Section 3.1) is an ordered list of typed
switches a shuffle flow must traverse.  Optimising a policy (Algorithm 1)
means replacing individual switches with same-type alternatives that have
residual capacity (Eq 4).  On a hierarchical fabric the alternatives at each
position are exactly the nodes that lie at the same depth on *some*
equal-length route — the stages of the shortest-path DAG between the two
endpoints.  This module computes that structure:

* :func:`shortest_path_stages` — for a node pair, the list of candidate node
  sets per hop index (the layered graph Algorithm 1's DP runs over);
* :func:`enumerate_paths` — explicit enumeration of equal-cost (optionally
  slack-extended) paths, used by the exact solver and by tests as ground
  truth.
"""

from __future__ import annotations

import weakref
from typing import Sequence

import numpy as np

from .base import Topology, UNREACHABLE

#: Per-topology memo of stage decompositions, keyed by the topology object
#: (weakly — entries vanish with their topology) then (src, dst).
#: Topologies are immutable after construction, so entries never go stale.
#: A plain id(topology)-keyed dict would be wrong: once a topology is
#: garbage-collected a *new* topology can reuse the same id() and silently
#: inherit the old one's stages, making the policy DP walk a graph that no
#: longer exists (surfaced by the randomized property suite, which builds
#: hundreds of short-lived topologies).
_STAGE_CACHE: "weakref.WeakKeyDictionary[Topology, dict[tuple[int, int], list[tuple[int, ...]]]]" = (
    weakref.WeakKeyDictionary()
)

#: Vectorised companion to :data:`_STAGE_CACHE`: per (src, dst), the stages
#: as integer arrays plus the boolean adjacency matrix between each pair of
#: consecutive stages.  Same weak keying and staleness argument as above.
_STAGE_ADJ_CACHE: "weakref.WeakKeyDictionary[Topology, dict[tuple[int, int], tuple[list[np.ndarray], list[np.ndarray]]]]" = (
    weakref.WeakKeyDictionary()
)

#: Per-source BFS layer decomposition used by the batched unit-cost solver:
#: layer node arrays plus consecutive-layer adjacency matrices.
_LAYER_CACHE: "weakref.WeakKeyDictionary[Topology, dict[int, tuple[list[np.ndarray], list[np.ndarray]]]]" = (
    weakref.WeakKeyDictionary()
)

__all__ = [
    "shortest_path_stages",
    "stage_adjacency",
    "bfs_layers",
    "single_source_unit_costs",
    "enumerate_paths",
    "count_shortest_paths",
    "invalidate_topology_caches",
]


def invalidate_topology_caches(topology: Topology) -> None:
    """Drop every memoised routing structure for ``topology``.

    The stage/layer caches are purely structural (which nodes lie on which
    shortest paths) and the topology graph itself is immutable, so in normal
    operation they never go stale.  The fault-injection layer still calls
    this on switch failure/recovery: availability is masked dynamically in
    the policy DP, but explicitly dropping the memos keeps the contract
    simple ("after a fabric-state change, no routing memo survives") and
    bounds memory on long fault timelines.  Safe to call at any time — the
    structures rebuild lazily on next use.
    """
    for cache in (_STAGE_CACHE, _STAGE_ADJ_CACHE, _LAYER_CACHE):
        cache.pop(topology, None)


def shortest_path_stages(
    topology: Topology, src: int, dst: int
) -> list[tuple[int, ...]]:
    """Candidate node sets per position of any shortest ``src``→``dst`` path.

    Returns ``stages`` with ``stages[0] == (src,)``, ``stages[-1] == (dst,)``
    and ``stages[j]`` = every node ``n`` with ``d(src, n) == j`` and
    ``d(n, dst) == D - j`` where ``D`` is the shortest-path hop distance.  Two
    consecutive stages are always joined by at least one physical link, but
    not every cross-stage node pair is adjacent — the policy DP must check
    adjacency edge by edge.

    Raises ``ValueError`` when the endpoints are disconnected.
    """
    if src == dst:
        return [(src,)]
    per_topo = _STAGE_CACHE.setdefault(topology, {})
    cached = per_topo.get((src, dst))
    if cached is not None:
        return cached
    dist_src = topology.hop_distances_from(src)
    dist_dst = topology.hop_distances_from(dst)
    total = int(dist_src[dst])
    if total == UNREACHABLE:
        raise ValueError(f"no path between {src} and {dst}")
    # Nodes on some shortest path satisfy d(src, n) + d(n, dst) == total.
    on_path = dist_src + dist_dst == total
    stages: list[tuple[int, ...]] = [(src,)]
    for j in range(1, total):
        stage = tuple(
            int(n) for n in np.nonzero(on_path & (dist_src == j))[0]
        )
        stages.append(stage)
    stages.append((dst,))
    per_topo[(src, dst)] = stages
    return stages


def stage_adjacency(
    topology: Topology, src: int, dst: int
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Vectorised form of :func:`shortest_path_stages` for the policy DP.

    Returns ``(stages, mats)`` where ``stages[k]`` is the k-th stage as an
    int64 array (ascending node ids, identical contents to
    ``shortest_path_stages``) and ``mats[k]`` is the boolean matrix of shape
    ``(len(stages[k]), len(stages[k+1]))`` with ``mats[k][i, j]`` True iff
    ``stages[k][i]`` and ``stages[k+1][j]`` are physically adjacent.  Cached
    per (topology, src, dst); topologies are immutable so entries never go
    stale.
    """
    per_topo = _STAGE_ADJ_CACHE.setdefault(topology, {})
    cached = per_topo.get((src, dst))
    if cached is not None:
        return cached
    stage_tuples = shortest_path_stages(topology, src, dst)
    stages = [np.asarray(stage, dtype=np.int64) for stage in stage_tuples]
    adjacency = topology.adjacency_matrix()
    mats = [
        adjacency[np.ix_(stages[k], stages[k + 1])]
        for k in range(len(stages) - 1)
    ]
    entry = (stages, mats)
    per_topo[(src, dst)] = entry
    return entry


def bfs_layers(
    topology: Topology, src: int
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """BFS layer decomposition from ``src`` with inter-layer adjacency.

    ``layers[d]`` holds every node at hop distance ``d`` from ``src``
    (ascending ids; unreachable nodes appear in no layer) and ``mats[d]`` is
    the boolean adjacency between ``layers[d]`` and ``layers[d+1]``.  This is
    the structure :func:`single_source_unit_costs` prices routes over — any
    hop-shortest path to a node at layer ``d`` enters it from layer ``d-1``.
    Cached per (topology, src).
    """
    per_topo = _LAYER_CACHE.setdefault(topology, {})
    cached = per_topo.get(src)
    if cached is not None:
        return cached
    dist = topology.hop_distances_from(src)
    reachable = dist != UNREACHABLE
    max_depth = int(dist[reachable].max()) if reachable.any() else 0
    layers = [
        np.nonzero(dist == d)[0].astype(np.int64)
        for d in range(max_depth + 1)
    ]
    adjacency = topology.adjacency_matrix()
    mats = [
        adjacency[np.ix_(layers[d], layers[d + 1])]
        for d in range(len(layers) - 1)
    ]
    entry = (layers, mats)
    per_topo[src] = entry
    return entry


def single_source_unit_costs(
    topology: Topology, src: int, node_costs: np.ndarray
) -> np.ndarray:
    """Minimum traversal cost over hop-shortest paths from ``src`` to every
    node, in one layered min-plus pass.

    ``node_costs[n]`` is the cost contributed by traversing node ``n``
    (0.0 for servers, the load-derived switch cost for switches).  The return
    value ``best`` has ``best[n]`` equal to the minimum, over all
    *hop-shortest* ``src → n`` paths, of the sum of node costs along the path
    (``inf`` for unreachable nodes).  For a destination server this is
    exactly the relaxed-capacity pair cost the per-pair stage DP computes —
    every prefix of a hop-shortest path is itself hop-shortest, so the
    per-layer recurrence ``best[n] = min over adjacent prev of best[prev]``
    plus ``node_costs[n]`` prices all destinations at once.
    """
    layers, mats = bfs_layers(topology, src)
    best = np.full(topology.num_nodes, np.inf, dtype=np.float64)
    current = np.asarray([node_costs[src]], dtype=np.float64)
    best[src] = current[0]
    for depth, mat in enumerate(mats):
        nodes = layers[depth + 1]
        reached = np.where(mat, current[:, None], np.inf).min(axis=0)
        current = reached + node_costs[nodes]
        best[nodes] = current
    return best


def enumerate_paths(
    topology: Topology,
    src: int,
    dst: int,
    slack: int = 0,
    limit: int = 10_000,
) -> list[tuple[int, ...]]:
    """All simple paths from ``src`` to ``dst`` of length ≤ shortest + slack.

    Enumeration is a depth-first search pruned with the distance-to-target
    labels, so the search only ever expands prefixes that can still finish
    within budget.  ``limit`` caps the number of returned paths (a fat-tree
    pair can have hundreds); paths are produced in lexicographic neighbour
    order so the output is deterministic.
    """
    if slack < 0:
        raise ValueError("slack must be >= 0")
    if src == dst:
        return [(src,)]
    dist_dst = topology.hop_distances_from(dst)
    if dist_dst[src] == UNREACHABLE:
        raise ValueError(f"no path between {src} and {dst}")
    budget = int(dist_dst[src]) + slack

    paths: list[tuple[int, ...]] = []
    prefix: list[int] = [src]
    on_path = {src}

    def dfs(node: int, remaining: int) -> None:
        if len(paths) >= limit:
            return
        for neigh in topology.neighbors(node):
            if neigh in on_path:
                continue
            if neigh == dst:
                paths.append(tuple(prefix) + (dst,))
                if len(paths) >= limit:
                    return
                continue
            needed = dist_dst[neigh]
            if needed == UNREACHABLE or needed > remaining - 1:
                continue
            prefix.append(neigh)
            on_path.add(neigh)
            dfs(neigh, remaining - 1)
            prefix.pop()
            on_path.remove(neigh)

    dfs(src, budget)
    return paths


def count_shortest_paths(topology: Topology, src: int, dst: int) -> int:
    """Number of distinct shortest paths between two nodes.

    Computed by dynamic programming over the shortest-path DAG (product of
    per-stage adjacency counts), so it stays cheap even when explicit
    enumeration would blow up.
    """
    if src == dst:
        return 1
    stages = shortest_path_stages(topology, src, dst)
    counts = {src: 1}
    for stage in stages[1:]:
        nxt: dict[int, int] = {}
        for node in stage:
            total = sum(
                c for prev, c in counts.items() if topology.has_link(prev, node)
            )
            if total:
                nxt[node] = total
        counts = nxt
    return counts.get(dst, 0)


def path_is_valid(topology: Topology, path: Sequence[int]) -> bool:
    """True when consecutive nodes of ``path`` are physically adjacent and no
    node repeats."""
    if len(path) != len(set(path)):
        return False
    return all(topology.has_link(a, b) for a, b in zip(path, path[1:]))
