"""Hierarchical data-center network substrate.

Provides the four fabric generators the paper evaluates (Tree, Fat-Tree, VL2,
BCube — Figure 8b), the topology graph model and routing/equal-cost-path
utilities used by the policy optimiser.
"""

from .base import Link, Server, Switch, Tier, Topology, UNREACHABLE
from .bcube import BCubeConfig, build_bcube
from .describe import TopologySummary, ascii_tree, describe_topology
from .fattree import FatTreeConfig, build_fattree
from .routing import (
    bfs_layers,
    count_shortest_paths,
    enumerate_paths,
    path_is_valid,
    shortest_path_stages,
    single_source_unit_costs,
    stage_adjacency,
)
from .tree import TreeConfig, build_tree
from .vl2 import VL2Config, build_vl2

__all__ = [
    "Link",
    "Server",
    "Switch",
    "Tier",
    "Topology",
    "UNREACHABLE",
    "TreeConfig",
    "build_tree",
    "FatTreeConfig",
    "build_fattree",
    "VL2Config",
    "build_vl2",
    "BCubeConfig",
    "build_bcube",
    "shortest_path_stages",
    "stage_adjacency",
    "bfs_layers",
    "single_source_unit_costs",
    "enumerate_paths",
    "count_shortest_paths",
    "path_is_valid",
    "TopologySummary",
    "describe_topology",
    "ascii_tree",
]
