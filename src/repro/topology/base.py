"""Core network-substrate data structures.

The paper evaluates Hit-Scheduler on hierarchical data-center networks
(canonical multi-tier trees, Fat-Tree, VL2 and BCube).  This module provides
the topology-neutral building blocks those generators share:

* :class:`Switch` — a forwarding element with a *tier* (access / aggregation /
  core), a *type* string used by traffic policies (Eq 4 of the paper requires
  rescheduled switches to preserve the type) and a *capacity* bounding the sum
  of flow rates it may carry.
* :class:`Server` — a compute host with a resource capacity vector.
* :class:`Link` — an undirected physical link with full-duplex bandwidth and a
  propagation latency.
* :class:`Topology` — the graph of servers, switches and links, with the
  queries every other layer needs: BFS hop distances, shortest paths, the
  switch sequence of a path, and tier metadata.

All node identifiers are small contiguous integers so that hot paths can use
NumPy arrays indexed by node id.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Tier",
    "Switch",
    "Server",
    "Link",
    "Topology",
    "UNREACHABLE",
]

#: Sentinel hop distance for disconnected node pairs.
UNREACHABLE: int = -1


class Tier(IntEnum):
    """Switch tier in a hierarchical data-center network.

    Lower values are closer to the servers.  Topologies that do not follow the
    canonical three-tier structure (e.g. BCube levels) still map their layers
    onto these values so that policies can reason about "type" uniformly.
    """

    ACCESS = 0
    AGGREGATION = 1
    CORE = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Switch:
    """A switch in the hierarchical network.

    Parameters mirror the paper's switch model (Section 3.1): every switch
    ``w_i`` carries ``{capacity, type}``.  ``capacity`` bounds the total rate
    of the flows whose policy routes them through this switch (fifth
    constraint of Eq 3); ``type`` is checked by policy satisfaction (sixth
    constraint).
    """

    node_id: int
    name: str
    tier: Tier
    capacity: float
    #: Free-form type tag.  Defaults to the tier label; topologies with richer
    #: structure (e.g. VL2 intermediate switches) may refine it.
    switch_type: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"switch {self.name}: capacity must be positive")
        if not self.switch_type:
            object.__setattr__(self, "switch_type", self.tier.label)


@dataclass(frozen=True)
class Server:
    """A physical server hosting containers.

    ``resource_capacity`` is the available physical resource ``q_j`` of the
    paper (Section 3.1) expressed as an opaque vector; the cluster layer
    interprets the components (memory, vcores).
    """

    node_id: int
    name: str
    resource_capacity: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.resource_capacity):
            raise ValueError(f"server {self.name}: negative resource capacity")


@dataclass(frozen=True)
class Link:
    """An undirected physical link.

    ``bandwidth`` is the full-duplex capacity per direction (rate units) and
    ``latency`` the propagation delay contributed by traversing the link.
    """

    u: int
    v: int
    bandwidth: float
    latency: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError("self-links are not allowed")
        if self.bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("link latency must be non-negative")

    @property
    def key(self) -> tuple[int, int]:
        """Canonical undirected key (smaller id first)."""
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class Topology:
    """A hierarchical data-center network.

    The class is intentionally immutable after construction: generators build
    the node and link sets once, then every consumer (schedulers, the flow
    simulator, the policy controller) only queries it.  Mutable run-time state
    (switch load, link utilisation) lives in the consumers.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        switches: Sequence[Switch],
        links: Iterable[Link],
        name: str = "topology",
    ) -> None:
        self.name = name
        self._servers: dict[int, Server] = {s.node_id: s for s in servers}
        self._switches: dict[int, Switch] = {w.node_id: w for w in switches}
        if set(self._servers) & set(self._switches):
            raise ValueError("server and switch node ids overlap")
        self._num_nodes = len(self._servers) + len(self._switches)
        ids = sorted(self._servers) + sorted(self._switches)
        if ids != list(range(self._num_nodes)):
            raise ValueError(
                "node ids must be contiguous integers with servers first"
            )
        self._links: dict[tuple[int, int], Link] = {}
        adjacency: list[list[int]] = [[] for _ in range(self._num_nodes)]
        for link in links:
            if link.u >= self._num_nodes or link.v >= self._num_nodes:
                raise ValueError(f"link {link.key} references unknown node")
            if link.key in self._links:
                raise ValueError(f"duplicate link {link.key}")
            self._links[link.key] = link
            adjacency[link.u].append(link.v)
            adjacency[link.v].append(link.u)
        self._adjacency: list[tuple[int, ...]] = [
            tuple(sorted(neigh)) for neigh in adjacency
        ]
        self._distance_cache: dict[int, np.ndarray] = {}
        self._adjacency_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_servers(self) -> int:
        return len(self._servers)

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def server_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._servers))

    @property
    def switch_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._switches))

    def is_server(self, node_id: int) -> bool:
        return node_id in self._servers

    def is_switch(self, node_id: int) -> bool:
        return node_id in self._switches

    def server(self, node_id: int) -> Server:
        return self._servers[node_id]

    def switch(self, node_id: int) -> Switch:
        return self._switches[node_id]

    def servers(self) -> Iterator[Server]:
        for node_id in sorted(self._servers):
            yield self._servers[node_id]

    def switches(self) -> Iterator[Switch]:
        for node_id in sorted(self._switches):
            yield self._switches[node_id]

    def switches_of_tier(self, tier: Tier) -> tuple[int, ...]:
        return tuple(
            w.node_id for w in self.switches() if w.tier == tier
        )

    def tier_of(self, node_id: int) -> Tier:
        return self._switches[node_id].tier

    # ------------------------------------------------------------------ links
    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links[k] for k in sorted(self._links))

    def link(self, u: int, v: int) -> Link:
        """Return the undirected link between ``u`` and ``v``.

        Raises ``KeyError`` when the nodes are not adjacent.
        """
        key = (u, v) if u < v else (v, u)
        return self._links[key]

    def has_link(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._links

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        return self._adjacency[node_id]

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency, ``A[u, v]`` True iff ``u``—``v`` is a link.

        Built once on first use and returned read-only; vectorised routing
        kernels slice per-stage sub-matrices out of it instead of issuing
        per-pair :meth:`has_link` calls.
        """
        if self._adjacency_matrix is None:
            matrix = np.zeros((self._num_nodes, self._num_nodes), dtype=bool)
            for u, v in self._links:
                matrix[u, v] = True
                matrix[v, u] = True
            matrix.setflags(write=False)
            self._adjacency_matrix = matrix
        return self._adjacency_matrix

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    # -------------------------------------------------------------- distances
    def hop_distances_from(self, source: int) -> np.ndarray:
        """BFS hop distances from ``source`` to every node.

        Unreachable nodes get :data:`UNREACHABLE`.  Results are cached per
        source; a 512-server tree has a few hundred nodes so the cache stays
        small while letting schedulers issue thousands of queries cheaply.
        """
        cached = self._distance_cache.get(source)
        if cached is not None:
            return cached
        dist = np.full(self._num_nodes, UNREACHABLE, dtype=np.int64)
        dist[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            next_d = dist[node] + 1
            for neigh in self._adjacency[node]:
                if dist[neigh] == UNREACHABLE:
                    dist[neigh] = next_d
                    queue.append(neigh)
        dist.setflags(write=False)
        self._distance_cache[source] = dist
        return dist

    def hop_distance(self, u: int, v: int) -> int:
        """Hop distance between two nodes (:data:`UNREACHABLE` if none)."""
        return int(self.hop_distances_from(u)[v])

    def shortest_path(self, u: int, v: int) -> tuple[int, ...]:
        """One deterministic shortest path from ``u`` to ``v`` (inclusive).

        Ties are broken toward the lowest-numbered neighbour so repeated calls
        are stable, which keeps baseline schedulers reproducible.
        """
        if u == v:
            return (u,)
        dist_from_v = self.hop_distances_from(v)
        if dist_from_v[u] == UNREACHABLE:
            raise ValueError(f"no path between {u} and {v}")
        path = [u]
        node = u
        while node != v:
            remaining = dist_from_v[node]
            node = min(
                n for n in self._adjacency[node] if dist_from_v[n] == remaining - 1
            )
            path.append(node)
        return tuple(path)

    def switches_on_path(self, path: Sequence[int]) -> tuple[int, ...]:
        """The subsequence of ``path`` that are switches."""
        return tuple(n for n in path if n in self._switches)

    def path_latency(self, path: Sequence[int]) -> float:
        """Sum of link latencies along a node path."""
        return float(
            sum(self.link(a, b).latency for a, b in zip(path, path[1:]))
        )

    def path_links(self, path: Sequence[int]) -> tuple[tuple[int, int], ...]:
        """Directed (u, v) pairs for each hop of a node path."""
        return tuple((a, b) for a, b in zip(path, path[1:]))

    def min_bandwidth_on_path(self, path: Sequence[int]) -> float:
        """Bottleneck link bandwidth along a node path."""
        return min(self.link(a, b).bandwidth for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------ misc
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        * every server has at least one link (it can reach the fabric);
        * the graph is connected across servers (any server pair can shuffle).
        """
        for server in self.servers():
            if not self._adjacency[server.node_id]:
                raise ValueError(f"server {server.name} is disconnected")
        server_ids = self.server_ids
        if server_ids:
            dist = self.hop_distances_from(server_ids[0])
            stranded = [s for s in server_ids if dist[s] == UNREACHABLE]
            if stranded:
                raise ValueError(f"servers unreachable from {server_ids[0]}: {stranded}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, servers={self.num_servers}, "
            f"switches={self.num_switches}, links={len(self._links)})"
        )
