"""Human-readable fabric descriptions.

``describe_topology`` summarises a fabric's structure (per-tier switch
counts, oversubscription ratios, path-diversity statistics) and
``ascii_tree`` renders small trees for docs and debugging.  Both are
read-only views over :class:`~repro.topology.base.Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Tier, Topology
from .routing import count_shortest_paths

__all__ = ["TopologySummary", "describe_topology", "ascii_tree"]


@dataclass(frozen=True)
class TopologySummary:
    """Aggregate structural facts about a fabric."""

    name: str
    num_servers: int
    num_switches: int
    num_links: int
    switches_per_tier: dict[str, int]
    diameter_hops: int
    mean_server_distance: float
    #: Mean count of equal-cost shortest paths over sampled server pairs.
    mean_path_diversity: float
    #: Ratio of total server-link bandwidth to total top-tier link bandwidth
    #: (> 1 means the fabric is oversubscribed).
    oversubscription: float


def describe_topology(
    topology: Topology, sample_pairs: int = 64, seed: int = 0
) -> TopologySummary:
    """Compute a :class:`TopologySummary` (sampling pairs on big fabrics)."""
    servers = list(topology.server_ids)
    rng = np.random.default_rng(seed)
    if len(servers) < 2:
        raise ValueError("need at least two servers to describe distances")

    pairs: list[tuple[int, int]] = []
    max_pairs = len(servers) * (len(servers) - 1) // 2
    if max_pairs <= sample_pairs:
        pairs = [
            (a, b)
            for i, a in enumerate(servers)
            for b in servers[i + 1:]
        ]
    else:
        while len(pairs) < sample_pairs:
            a, b = rng.choice(servers, size=2, replace=False)
            pairs.append((int(a), int(b)))

    distances = [topology.hop_distance(a, b) for a, b in pairs]
    diversity = [count_shortest_paths(topology, a, b) for a, b in pairs]

    per_tier: dict[str, int] = {}
    for w in topology.switch_ids:
        label = topology.tier_of(w).label
        per_tier[label] = per_tier.get(label, 0) + 1

    server_bw = 0.0
    top_bw = 0.0
    top_tier = max(
        (topology.tier_of(w) for w in topology.switch_ids), default=Tier.ACCESS
    )
    for link in topology.links:
        endpoints = (link.u, link.v)
        if any(topology.is_server(n) for n in endpoints):
            server_bw += link.bandwidth
        if any(
            topology.is_switch(n) and topology.tier_of(n) == top_tier
            for n in endpoints
        ):
            top_bw += link.bandwidth

    return TopologySummary(
        name=topology.name,
        num_servers=topology.num_servers,
        num_switches=topology.num_switches,
        num_links=len(topology.links),
        switches_per_tier=per_tier,
        diameter_hops=int(max(distances)),
        mean_server_distance=float(np.mean(distances)),
        mean_path_diversity=float(np.mean(diversity)),
        oversubscription=(server_bw / top_bw) if top_bw > 0 else float("inf"),
    )


def ascii_tree(topology: Topology, max_servers: int = 32) -> str:
    """Render a (small) hierarchical fabric as an indented tree.

    Switches are grouped by tier from the top down; each access switch lists
    its servers.  Refuses fabrics above ``max_servers`` — this is a debugging
    aid, not a layout engine.
    """
    if topology.num_servers > max_servers:
        raise ValueError(
            f"ascii_tree is for small fabrics (<= {max_servers} servers)"
        )
    lines = [topology.name]
    tiers = sorted(
        {topology.tier_of(w) for w in topology.switch_ids}, reverse=True
    )
    for tier in tiers:
        lines.append(f"  [{tier.label}]")
        for w in topology.switches_of_tier(tier):
            down = [
                n
                for n in topology.neighbors(w)
                if topology.is_server(n)
                or (topology.is_switch(n) and topology.tier_of(n) < tier)
            ]
            names = ", ".join(
                topology.server(n).name
                if topology.is_server(n)
                else topology.switch(n).name
                for n in sorted(down)
            )
            lines.append(f"    {topology.switch(w).name} -> {names}")
    return "\n".join(lines)
