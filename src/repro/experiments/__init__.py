"""Experiment harnesses: one driver per paper table/figure plus shared
static-placement machinery and canonical configurations."""

from . import configs
from .faults import (
    FaultComparisonResult,
    FaultRunResult,
    fault_degradation,
    run_fault_cell,
    straggler_timeline,
)
from .figures import (
    CaseStudyResult,
    TestbedResult,
    fig1_traffic_volume,
    fig3_case_study,
    fig6_fig7_testbed,
    fig8a_workload_classes,
    fig8b_architectures,
    fig9_bandwidth_sensitivity,
    fig10_job_numbers,
)
from .static import (
    StaticResult,
    StaticWorkload,
    build_static_workload,
    run_static_cell,
    run_static_placement,
)
from .sweep import (
    CellConfig,
    SweepRunResult,
    SweepSpec,
    merge_sweep,
    run_cell,
    run_sweep,
)
from .telemetry import (
    TelemetryComparisonResult,
    TelemetryRunResult,
    critical_path_comparison,
    run_telemetry_cell,
)

__all__ = [
    "configs",
    "fig1_traffic_volume",
    "fig3_case_study",
    "fig6_fig7_testbed",
    "fig8a_workload_classes",
    "fig8b_architectures",
    "fig9_bandwidth_sensitivity",
    "fig10_job_numbers",
    "CaseStudyResult",
    "TestbedResult",
    "FaultComparisonResult",
    "FaultRunResult",
    "fault_degradation",
    "run_fault_cell",
    "straggler_timeline",
    "StaticResult",
    "StaticWorkload",
    "build_static_workload",
    "run_static_placement",
    "run_static_cell",
    "TelemetryComparisonResult",
    "TelemetryRunResult",
    "critical_path_comparison",
    "run_telemetry_cell",
    "CellConfig",
    "SweepSpec",
    "SweepRunResult",
    "run_cell",
    "run_sweep",
    "merge_sweep",
]
