"""Static placement experiments (no time dimension).

Several of the paper's figures (8a, 8b, 10 and the Section 2.3 case study)
compare *shuffle traffic cost* across schedulers, which needs no
discrete-event execution: build the containers and flows of a workload,
let each scheduler place them, route the flows per the scheduler's policy
behaviour, and read the cost off the TAA instance.  This module is that
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.container import Container, TaskKind, TaskRef
from ..cluster.resources import Resources
from ..core.policy import CostModel
from ..core.taa import TAAInstance
from ..mapreduce.hdfs import HdfsModel
from ..mapreduce.job import JobSpec, shuffle_matrix
from ..mapreduce.shuffle import ShuffleFlow, build_flows
from ..schedulers.base import Scheduler, SchedulingContext
from ..topology.base import Topology

__all__ = [
    "StaticWorkload",
    "StaticResult",
    "build_static_workload",
    "run_static_placement",
    "run_static_cell",
    "evaluate_policy_cost",
]


@dataclass
class StaticWorkload:
    """Materialised containers + flows of a job list, ready for placement."""

    topology: Topology
    jobs: list[JobSpec]
    containers: list[Container]
    #: Per job: (map container ids, reduce container ids).
    job_containers: dict[int, tuple[list[int], list[int]]]
    flows: list[ShuffleFlow]
    hdfs: HdfsModel


@dataclass
class StaticResult:
    """Outcome of one scheduler's static placement of a workload."""

    scheduler_name: str
    taa: TAAInstance
    #: Objective of Eq 3 under the scheduler's policies (rate x switch cost).
    policy_cost: float
    #: Paper's GB.T currency: sum over flows of size x traversed switches.
    shuffle_cost: float
    #: Mean traversed-switch count per flow (Figure 7a's unit).
    avg_route_hops: float
    total_shuffle_volume: float

    def cost_reduction_vs(self, baseline: "StaticResult") -> float:
        """Fractional shuffle-cost reduction against a baseline result."""
        if baseline.shuffle_cost == 0:
            return 0.0
        return 1.0 - self.shuffle_cost / baseline.shuffle_cost


def build_static_workload(
    topology: Topology,
    jobs: list[JobSpec],
    container_demand: Resources = Resources(1.0, 0.0),
    seed: int = 0,
    rate_epoch: float = 1.0,
    replication: int = 3,
) -> StaticWorkload:
    """Create (unplaced) containers and shuffle flows for every job.

    Shuffle matrices are sampled from ``seed`` so that every scheduler
    placement sees byte-identical flow sets.
    """
    rng = np.random.default_rng(seed)
    hdfs = HdfsModel(topology, replication=replication, seed=seed + 1)
    containers: list[Container] = []
    job_containers: dict[int, tuple[list[int], list[int]]] = {}
    flows: list[ShuffleFlow] = []
    next_cid = 0
    next_fid = 0
    for spec in jobs:
        hdfs.place_job_blocks(spec)
        map_ids: list[int] = []
        reduce_ids: list[int] = []
        for i in range(spec.num_maps):
            containers.append(
                Container(next_cid, container_demand, TaskRef(spec.job_id, TaskKind.MAP, i))
            )
            map_ids.append(next_cid)
            next_cid += 1
        for i in range(spec.num_reduces):
            containers.append(
                Container(next_cid, container_demand, TaskRef(spec.job_id, TaskKind.REDUCE, i))
            )
            reduce_ids.append(next_cid)
            next_cid += 1
        matrix = shuffle_matrix(spec, rng)
        job_flows = build_flows(
            spec,
            map_ids,
            reduce_ids,
            matrix=matrix,
            rate_epoch=rate_epoch,
            first_flow_id=next_fid,
        )
        next_fid += len(job_flows) + 1
        flows.extend(job_flows)
        job_containers[spec.job_id] = (map_ids, reduce_ids)
    return StaticWorkload(
        topology=topology,
        jobs=jobs,
        containers=containers,
        job_containers=job_containers,
        flows=flows,
        hdfs=hdfs,
    )


def run_static_cell(
    topology: Topology,
    jobs: list[JobSpec],
    scheduler_name: str,
    seed: int = 0,
    congestion_weight: float = 2.0,
) -> dict[str, object]:
    """One self-contained static-placement sweep cell, as plain data.

    Builds the workload and places it with a fresh scheduler, deriving
    everything from the arguments and ``seed`` — no global RNG, no shared
    module state — so cells can run in any order, in any process, and
    produce identical results (the sweep contract of
    :mod:`repro.experiments.sweep`).
    """
    from ..schedulers import make_scheduler

    workload = build_static_workload(topology, jobs, seed=seed)
    result = run_static_placement(
        workload, make_scheduler(scheduler_name, seed=seed), seed=seed
    )
    return {
        "summary": {
            "shuffle_cost": float(result.shuffle_cost),
            "policy_cost": float(result.policy_cost),
            "congested_policy_cost": float(
                evaluate_policy_cost(result.taa, congestion_weight=congestion_weight)
            ),
            "avg_route_hops": float(result.avg_route_hops),
            "shuffle_volume": float(result.total_shuffle_volume),
        },
        "counters": {},
    }


def evaluate_policy_cost(
    taa: TAAInstance, congestion_weight: float = 2.0
) -> float:
    """Re-price a placement's installed policies under a common yardstick.

    Experiments that compare schedulers under load (Figure 10) need a cost
    model where oversubscribing a switch is expensive; this evaluates the
    Eq 3 objective with the given congestion weight over the flows exactly
    as routed by whatever scheduler ran, without touching any scheduler's
    own optimisation knobs.  Each flow's own rate is excluded from the load
    it is priced against (consistent with
    :meth:`~repro.core.policy.PolicyController.policy_cost`).
    """
    model = CostModel(congestion_weight=congestion_weight)
    controller = taa.controller
    topology = taa.topology
    total = 0.0
    for flow in taa.flows:
        policy = controller.policy_of(flow.flow_id)
        if policy is None:
            continue
        for switch in policy.switch_list:
            load = max(controller.load(switch) - flow.rate, 0.0)
            total += flow.rate * model.switch_cost(topology, switch, load)
    return total


def run_static_placement(
    workload: StaticWorkload,
    scheduler: Scheduler,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> StaticResult:
    """Place every job with ``scheduler`` and measure the shuffle cost.

    Jobs are placed one at a time in submission order, each seeing the
    placements of its predecessors — the same incremental view the dynamic
    simulator provides.  After placement, flows are routed per the
    scheduler's policy behaviour (static single path for baselines, optimal
    capacity-aware policies for Hit).
    """
    taa = TAAInstance(
        workload.topology,
        # Fresh Container objects so one workload can be placed repeatedly.
        [
            Container(c.container_id, c.demand, c.task)
            for c in workload.containers
        ],
        workload.flows,
        cost_model=cost_model,
    )
    ctx = SchedulingContext(
        taa=taa, hdfs=workload.hdfs, rng=np.random.default_rng(seed)
    )
    for spec in workload.jobs:
        map_ids, reduce_ids = workload.job_containers[spec.job_id]
        scheduler.place_initial_wave(ctx, spec, map_ids, reduce_ids)
    scheduler.route_flows(taa)

    switches_per_flow: list[int] = []
    shuffle_cost = 0.0
    volume = 0.0
    for flow in taa.flows:
        policy = taa.controller.policy_of(flow.flow_id)
        hops = policy.length if policy is not None else 0
        switches_per_flow.append(hops)
        shuffle_cost += flow.size * hops
        volume += flow.size
    return StaticResult(
        scheduler_name=scheduler.name,
        taa=taa,
        policy_cost=taa.total_shuffle_cost(),
        shuffle_cost=shuffle_cost,
        avg_route_hops=float(np.mean(switches_per_flow)) if switches_per_flow else 0.0,
        total_shuffle_volume=volume,
    )
