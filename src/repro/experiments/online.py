"""Overload campaigns: open-loop arrivals graded against the overload contract.

The batch harnesses answer *how fast does a fixed job set finish*; this one
answers *what happens when jobs keep coming*.  A campaign sweeps an
arrival-rate multiplier through and past the cluster's estimated saturation
point, for each (scheduler, topology) pair, with seeded multi-tenant arrival
streams flowing through the admission plane (:mod:`repro.workload`).  Every
cell is machine-checked against the **overload contract**:

* **exhaustive accounting** — every submitted job is exactly one of
  completed / still queued at end of run / rejected with a reason code;
  ``completed + rejected + queued == submitted``, per tenant and globally;
* **no silent drops** — the arrival stream's length must match the
  admission layer's submitted count, and every rejection carries a record;
* **bounded queues** — under the ``queue-bound`` policy no tenant queue
  ever exceeds its bound (peak, not just final, length);
* **liveness** — a watchdog (shared with the chaos harness) flags sim-time
  stalls independently of the engine's ``max_events`` guard;
* **determinism** — rerunning a cell from its seed is byte-identical
  (same fingerprint over summary + counters + event count).

Anything outside those buckets is a **contract violation** and is reported
as such; the harness never swallows one.  Per cell the report carries the
overload metrics the evaluation reads: mean/p99 job completion time,
mean/p99 slowdown, mean wait, Jain fairness across tenants, and the
rejection breakdown.

Like :mod:`repro.faults.chaos`, this module is not imported from the
experiments package ``__init__`` — it pulls in the whole engine.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.report import canonical_json
from ..faults.chaos import CHAOS_TOPOLOGIES, WatchdogSimulator
from ..mapreduce.job import JobSpec
from ..obs import (
    InvariantChecker,
    ProvenanceConfig,
    decision_digest,
    observe,
)
from ..schedulers import make_scheduler
from ..simulator import MapReduceSimulator, SimulationConfig
from ..topology.base import Topology
from ..workload import (
    ADMISSION_POLICIES,
    ARRIVAL_PROFILES,
    AdmissionConfig,
    ArrivalConfig,
    TenantSpec,
    estimate_saturation_rate,
    generate_arrivals,
)

__all__ = [
    "ONLINE_TOPOLOGIES",
    "OnlineCellResult",
    "OnlineConfig",
    "OnlineReport",
    "build_arrival_plan",
    "graded_online_run",
    "online_fingerprint",
    "overload_campaign",
    "run_online_cell",
]

#: Named fabrics the campaign cycles through (same redundancy-2 trees as the
#: chaos harness, so overload and fault campaigns are directly comparable).
ONLINE_TOPOLOGIES: dict[str, Callable[[], Topology]] = dict(CHAOS_TOPOLOGIES)


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of one overload campaign."""

    #: Arrival-rate multipliers, in units of the *estimated* saturation
    #: rate — 1.0 offers roughly what the cluster can serve, 2.0 is
    #: guaranteed overload.
    multipliers: tuple[float, ...] = (0.5, 1.0, 2.0)
    seed: int = 0
    schedulers: tuple[str, ...] = ("capacity", "hit")
    topologies: tuple[str, ...] = ("small", "deep")
    tenants: int = 2
    profile: str = "poisson"
    policy: str = "queue-bound"
    queue_bound: int = 8
    #: Submission window (sim time); the cluster then drains its backlog.
    duration: float = 3.0
    min_size: float = 2.0
    max_size: float = 6.0
    #: Consecutive same-timestamp events tolerated before the liveness
    #: watchdog declares a sim-time stall.
    stall_limit: int = 50_000
    #: Re-run every cell from its seed and compare fingerprints.
    rerun: bool = True

    def __post_init__(self) -> None:
        if not self.multipliers or any(m <= 0 for m in self.multipliers):
            raise ValueError("multipliers must be positive and non-empty")
        if not self.schedulers or not self.topologies:
            raise ValueError("need at least one scheduler and one topology")
        unknown = [t for t in self.topologies if t not in ONLINE_TOPOLOGIES]
        if unknown:
            raise ValueError(
                f"unknown online topologies {unknown}; "
                f"known: {sorted(ONLINE_TOPOLOGIES)}"
            )
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.profile not in ARRIVAL_PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {self.policy!r}")

    def to_dict(self) -> dict:
        return {
            "multipliers": list(self.multipliers),
            "seed": self.seed,
            "schedulers": list(self.schedulers),
            "topologies": list(self.topologies),
            "tenants": self.tenants,
            "profile": self.profile,
            "policy": self.policy,
            "queue_bound": self.queue_bound,
            "duration": self.duration,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "stall_limit": self.stall_limit,
            "rerun": self.rerun,
        }


@dataclass(frozen=True)
class OnlineCellResult:
    """Outcome of one graded overload cell (after its optional rerun)."""

    cell: int
    seed: int
    scheduler: str
    topology: str
    multiplier: float
    submitted: int
    #: ``"ok"`` or ``"failed"`` (an escape classified by the grader).
    status: str
    reason: str
    #: sha256 over the canonical JSON of (summary, counters, events).
    fingerprint: str
    summary: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: Overload-contract violations — empty on a passing cell.
    violations: tuple[str, ...] = ()
    #: Decision-provenance digest from a provenance-enabled rerun;
    #: attached only to failed/violating cells.
    provenance: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        body = {
            "cell": self.cell,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "topology": self.topology,
            "multiplier": self.multiplier,
            "submitted": self.submitted,
            "status": self.status,
            "reason": self.reason,
            "fingerprint": self.fingerprint,
            "summary": {k: self.summary[k] for k in sorted(self.summary)},
            "counters": dict(sorted(self.counters.items())),
            "violations": list(self.violations),
        }
        if self.provenance:
            body["provenance"] = self.provenance
        return body


@dataclass
class OnlineReport:
    """A full campaign: config + per-cell results, canonically hashable."""

    config: OnlineConfig
    cells: list[OnlineCellResult] = field(default_factory=list)

    @property
    def violations(self) -> list[OnlineCellResult]:
        return [c for c in self.cells if c.violations]

    def summary(self) -> dict:
        return {
            "cells": len(self.cells),
            "ok": sum(1 for c in self.cells if c.status == "ok"),
            "submitted": sum(c.submitted for c in self.cells),
            "completed": sum(
                c.counters.get("online.completed", 0) for c in self.cells
            ),
            "rejected": sum(
                c.counters.get("admission.rejected", 0) for c in self.cells
            ),
            "queued": sum(
                c.counters.get("admission.queued", 0) for c in self.cells
            ),
            "violations": sum(len(c.violations) for c in self.cells),
        }

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "summary": self.summary(),
            "cells": [c.to_dict() for c in self.cells],
        }

    def canonical(self) -> str:
        """Canonical JSON body — byte-identical across reruns of the same
        campaign (the contract the CI smoke compares with ``cmp``)."""
        return canonical_json(self.to_dict())


# ------------------------------------------------------------- plan building
def _topology_slots(topology: Topology, memory_per_container: float) -> int:
    """Container slots the fabric offers (memory being the binding axis)."""
    total = sum(
        float(s.resource_capacity[0]) for s in topology.servers()
    )
    return max(1, int(total / max(memory_per_container, 1e-9)))


def build_arrival_plan(
    topology: Topology,
    *,
    multiplier: float,
    tenants: int = 2,
    profile: str = "poisson",
    duration: float = 3.0,
    min_size: float = 2.0,
    max_size: float = 6.0,
    memory_per_container: float = 1.0,
) -> ArrivalConfig:
    """Arrival plan whose aggregate nominal rate is the fabric's estimated
    saturation rate — ``multiplier`` then scales it through/past the knee.

    The rate is split evenly across tenants; tenant weights stay 1.0 (the
    fairness the campaign measures is the admission layer's doing, not the
    offered load's).
    """
    specs = tuple(
        TenantSpec(
            tenant_id=i,
            rate=1.0,  # placeholder, replaced below once saturation is known
            input_size_range=(min_size, max_size),
        )
        for i in range(tenants)
    )
    saturation = estimate_saturation_rate(
        _topology_slots(topology, memory_per_container), specs
    )
    specs = tuple(
        dataclasses.replace(s, rate=saturation / tenants) for s in specs
    )
    return ArrivalConfig(
        tenants=specs,
        profile=profile,
        duration=duration,
        rate_multiplier=multiplier,
    )


def _admission_config(policy: str, queue_bound: int) -> AdmissionConfig:
    return AdmissionConfig(
        policy=policy,
        queue_bound=queue_bound if policy == "queue-bound" else None,
    )


def _fingerprint(body: dict) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def online_fingerprint(
    summary: dict[str, float], counters: dict[str, int], events: int
) -> str:
    """Canonical fingerprint of one online run (the rerun-compare token)."""
    return _fingerprint(
        {
            "summary": {k: float(v) for k, v in sorted(summary.items())},
            "counters": {k: int(v) for k, v in sorted(counters.items())},
            "events": int(events),
        }
    )


# ------------------------------------------------------------------- grading
def graded_online_run(
    build: Callable[[], tuple[MapReduceSimulator, list[JobSpec]]],
) -> tuple[str, str, str, dict[str, float], dict[str, int], list[str]]:
    """One contract-graded engine pass over an open-loop workload.

    ``build`` returns a fresh ``(simulator, jobs)`` — everything must be
    rebuilt inside it (calling ``graded_online_run(build)`` twice is the
    rerun-determinism probe).  The simulator must carry an admission plane.
    Returns ``(status, reason, fingerprint, summary, counters, violations)``.
    """
    sim, jobs = build()
    if sim.admission is None:
        raise ValueError("graded_online_run needs an admission-plane config")
    violations: list[str] = []
    try:
        with observe(checker=InvariantChecker(mode="raise")):
            metrics = sim.run()
    except Exception as exc:  # noqa: BLE001 — every escape is classified
        reason = f"{type(exc).__name__}: {exc}"
        if "sim-time stall" in reason:
            violations.append(f"liveness: {reason}")
        else:
            violations.append(f"unaccounted failure: {reason}")
        counters = {
            k: int(v) for k, v in sim.admission.counters().items()
        }
        return (
            "failed",
            reason,
            _fingerprint({"error": reason, "counters": counters}),
            {},
            counters,
            violations,
        )
    counters = {k: int(v) for k, v in sim.admission.counters().items()}
    completed = len(metrics.jobs)
    counters["online.completed"] = completed
    submitted = counters.get("admission.submitted", 0)
    rejected = counters.get("admission.rejected", 0)
    queued = counters.get("admission.queued", 0)
    if submitted != len(jobs):
        violations.append(
            f"arrival loss: {len(jobs)} jobs generated, "
            f"{submitted} reached admission"
        )
    if completed + rejected + queued != submitted:
        violations.append(
            "accounting hole: "
            f"completed({completed}) + rejected({rejected}) + "
            f"queued({queued}) != submitted({submitted})"
        )
    if len(metrics.rejections) != rejected:
        violations.append(
            f"silent rejection: {rejected} counted, "
            f"{len(metrics.rejections)} carry records"
        )
    admission_cfg = sim.admission.config
    if admission_cfg.policy == "queue-bound":
        bound = admission_cfg.queue_bound
        peak = sim.admission.max_queue_len()
        if bound is not None and peak > bound:
            violations.append(
                f"unbounded queue: peak tenant queue length {peak} "
                f"exceeds bound {bound}"
            )
    summary = {k: float(v) for k, v in metrics.online_summary().items()}
    fingerprint = online_fingerprint(summary, counters, sim.events_processed)
    return "ok", "", fingerprint, summary, counters, violations


# ---------------------------------------------------------------- cell runner
def run_online_cell(
    topology_factory: Callable[[], Topology],
    scheduler_factory: Callable[[], Any],
    config: SimulationConfig,
    *,
    seed: int,
    multiplier: float = 1.5,
    tenants: int = 2,
    profile: str = "poisson",
    policy: str = "queue-bound",
    queue_bound: int = 8,
    duration: float = 3.0,
    min_size: float = 2.0,
    max_size: float = 6.0,
    stall_limit: int = 50_000,
    rerun: bool = True,
) -> dict[str, Any]:
    """One overload arm as a self-contained cell: seeded arrivals at
    ``multiplier`` times the estimated saturation rate, graded against the
    overload contract (plus an optional byte-identity rerun).

    The factories must return *fresh* objects on every call — the cell (and
    its determinism rerun) rebuilds the whole stack, preserving the sweep's
    cell-isolation contract.  Returns plain JSON-serialisable data.
    """
    plan = build_arrival_plan(
        topology_factory(),
        multiplier=multiplier,
        tenants=tenants,
        profile=profile,
        duration=duration,
        min_size=min_size,
        max_size=max_size,
        memory_per_container=config.container_demand.memory,
    )

    def make_build(
        provenance: ProvenanceConfig | None = None,
        sink: list | None = None,
    ) -> Callable[[], tuple[MapReduceSimulator, list[JobSpec]]]:
        def build() -> tuple[MapReduceSimulator, list[JobSpec]]:
            jobs = generate_arrivals(plan, seed=seed)
            sim = WatchdogSimulator(
                topology_factory(),
                scheduler_factory(),
                jobs,
                dataclasses.replace(
                    config,
                    seed=seed,
                    admission=_admission_config(policy, queue_bound),
                    provenance=provenance,
                ),
                stall_limit=stall_limit,
            )
            if sink is not None:
                sink.append(sim)
            return sim, jobs

        return build

    build = make_build()
    status, reason, fingerprint, summary, counters, violations = (
        graded_online_run(build)
    )
    violations = list(violations)
    if rerun:
        again = graded_online_run(build)
        if (again[0], again[1], again[2]) != (status, reason, fingerprint):
            violations.append(
                f"nondeterministic rerun: {fingerprint[:12]} vs {again[2][:12]}"
            )
    result = {
        "summary": {k: float(v) for k, v in sorted(summary.items())},
        "counters": dict(sorted(counters.items())),
        "status": status,
        "reason": reason,
        "fingerprint": fingerprint,
        "violations": violations,
    }
    if status == "failed" or violations:
        # A failed/violating cell ships its own explanation: one more
        # pass with the decision-audit plane on (faithful by the
        # byte-identity contract) yields the decision fingerprint.
        sims: list[MapReduceSimulator] = []
        graded_online_run(make_build(ProvenanceConfig(ring_size=1024), sims))
        if sims:
            digest = decision_digest(sims[-1].provenance)
            if digest:
                result["provenance"] = digest
    return result


# ------------------------------------------------------------------ campaign
def overload_campaign(config: OnlineConfig | None = None) -> OnlineReport:
    """Sweep arrival-rate multipliers over the schedulers x topologies grid.

    Cell *i* uses seed ``config.seed + i``; the grid enumerates
    ``multiplier x topology x scheduler`` in declaration order, so a report
    reads as a rate sweep with scheduler/topology columns.
    """
    config = config or OnlineConfig()
    report = OnlineReport(config=config)
    sim_config = SimulationConfig(map_slots_per_job=16)
    index = 0
    for multiplier in config.multipliers:
        for topology in config.topologies:
            for scheduler in config.schedulers:
                seed = config.seed + index
                result = run_online_cell(
                    ONLINE_TOPOLOGIES[topology],
                    lambda scheduler=scheduler, seed=seed: make_scheduler(
                        scheduler, seed=seed
                    ),
                    sim_config,
                    seed=seed,
                    multiplier=multiplier,
                    tenants=config.tenants,
                    profile=config.profile,
                    policy=config.policy,
                    queue_bound=config.queue_bound,
                    duration=config.duration,
                    min_size=config.min_size,
                    max_size=config.max_size,
                    stall_limit=config.stall_limit,
                    rerun=config.rerun,
                )
                report.cells.append(
                    OnlineCellResult(
                        cell=index,
                        seed=seed,
                        scheduler=scheduler,
                        topology=topology,
                        multiplier=multiplier,
                        submitted=result["counters"].get(
                            "admission.submitted", 0
                        ),
                        status=result["status"],
                        reason=result["reason"],
                        fingerprint=result["fingerprint"],
                        summary=result["summary"],
                        counters=result["counters"],
                        violations=tuple(result["violations"]),
                        provenance=result.get("provenance", {}),
                    )
                )
                index += 1
    return report
