"""Telemetry comparison harness: where does each scheduler's JCT go?

Runs the same workload under every baseline with the simulated-time
timeline recorder on, attributes each job's JCT to critical-path segments
(:mod:`repro.analysis.critical_path`) and keeps the gauge timelines around
for export.  The headline artefact is the per-scheduler segment table —
"Hit wins because its shuffle tail is shorter" — plus, optionally, one
Perfetto trace per scheduler and a combined HTML report
(:mod:`repro.obs.export`).

A fault timeline and/or speculation config can be layered on, in which
case the attribution also surfaces ``fault_retry`` and ``speculation``
segments and the recorder's markers pin the discrete fault events to the
gauge timelines.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..analysis.critical_path import (
    JobCriticalPath,
    aggregate_segments,
    attribute_run,
    format_critical_path,
)
from ..faults import FaultSpec
from ..obs.export import save_chrome_trace, save_html_report
from ..obs.timeline import TimelineRecorder
from ..schedulers import make_scheduler
from ..simulator import MapReduceSimulator, MetricsCollector
from ..speculation import SpeculationConfig
from . import configs

__all__ = [
    "TelemetryRunResult",
    "TelemetryComparisonResult",
    "critical_path_comparison",
    "run_telemetry_cell",
]


@dataclass
class TelemetryRunResult:
    """One scheduler's recorded run."""

    metrics: MetricsCollector
    timeline: TimelineRecorder | None
    critical: list[JobCriticalPath]
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def mean_segments(self) -> dict[str, float]:
        return aggregate_segments(self.critical)


@dataclass
class TelemetryComparisonResult:
    """All schedulers over the same recorded workload."""

    runs: dict[str, TelemetryRunResult] = field(default_factory=dict)

    def critical_table(self, style: str = "plain") -> str:
        return format_critical_path(
            {name: run.critical for name, run in self.runs.items()},
            style=style,
        )

    def report_sections(self) -> list[dict[str, Any]]:
        """Sections in the shape :func:`repro.obs.export.render_html_report`
        consumes."""
        return [
            {
                "scheduler": name,
                "metrics": run.metrics,
                "timeline": run.timeline,
                "critical": run.critical,
                "counters": run.counters,
            }
            for name, run in self.runs.items()
        ]

    def export(
        self,
        trace_prefix: str | Path | None = None,
        html_path: str | Path | None = None,
    ) -> list[Path]:
        """Write per-scheduler Perfetto traces and/or the combined HTML
        report; returns the paths written."""
        written: list[Path] = []
        if trace_prefix is not None:
            for name, run in self.runs.items():
                path = Path(f"{trace_prefix}.{name}.json")
                save_chrome_trace(
                    path, run.metrics, run.timeline, scheduler=name
                )
                written.append(path)
        if html_path is not None:
            path = Path(html_path)
            save_html_report(path, self.report_sections())
            written.append(path)
        return written


def run_telemetry_cell(
    topology,
    scheduler,
    jobs,
    config,
) -> TelemetryRunResult:
    """One recorded run with critical-path attribution, as a sweep cell.

    Everything derives from the arguments (pass fresh topology/scheduler
    objects and a config with ``timeline_dt`` set); no global RNG or shared
    module state is touched, so cells compose into sharded sweeps
    (:mod:`repro.experiments.sweep`) without cross-contamination.
    """
    sim = MapReduceSimulator(topology, scheduler, jobs, config)
    metrics = sim.run()
    counters: dict[str, int] = {}
    if sim.faults is not None:
        counters.update(sim.faults.summary())
    if sim.speculation is not None:
        counters.update(sim.speculation.summary())
    return TelemetryRunResult(
        metrics=metrics,
        timeline=sim.timeline,
        critical=attribute_run(metrics),
        counters=counters,
    )


def critical_path_comparison(
    seed: int = 0,
    num_jobs: int = 12,
    scheduler_names: tuple[str, ...] = (
        "capacity",
        "capacity-ecmp",
        "random",
        "hit",
    ),
    timeline_dt: float = 0.05,
    faults: tuple[FaultSpec, ...] = (),
    speculation: SpeculationConfig | None = None,
    max_task_retries: int = 10,
) -> TelemetryComparisonResult:
    """Record every scheduler over the shared testbed workload.

    Identical jobs, fabric, seed and (optional) fault timeline per
    scheduler, so segment deltas are attributable to placement and policy
    alone.
    """
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    base_config = configs.testbed_simulation_config(seed=seed)
    config = dataclasses.replace(base_config, timeline_dt=timeline_dt)
    if faults:
        config = dataclasses.replace(
            config, faults=tuple(faults), max_task_retries=max_task_retries
        )
    if speculation is not None:
        config = dataclasses.replace(config, speculation=speculation)
    result = TelemetryComparisonResult()
    for name in scheduler_names:
        result.runs[name] = run_telemetry_cell(
            configs.testbed_tree(),
            make_scheduler(name, seed=seed),
            jobs,
            config,
        )
    return result
