"""Fault-degradation comparison: the same outage timeline, every baseline.

The question this harness answers is the robustness analogue of the paper's
Figures 6/7: *how much of each scheduler's advantage survives infrastructure
failures?*  Every baseline replays one byte-identical fault timeline (same
servers die at the same instants, same switches go dark), against the
identical job stream and fabric, so the JCT/makespan deltas are attributable
to placement and policy alone.

Reported per scheduler: fault-free and faulty mean JCT and makespan, the
relative degradation between them, and the engine's recovery counters
(re-executions, killed/parked/resumed flows).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..faults import FaultKind, FaultSpec, generate_timeline
from ..obs import ProvenanceConfig, decision_digest
from ..schedulers import make_scheduler
from ..simulator import MapReduceSimulator, MetricsCollector
from ..speculation import SpeculationConfig
from . import configs

__all__ = [
    "FaultRunResult",
    "FaultComparisonResult",
    "fault_degradation",
    "run_chaos_cell",
    "run_fault_cell",
    "straggler_timeline",
]


def run_fault_cell(
    topology,
    scheduler,
    jobs,
    config,
    timeline: tuple[FaultSpec, ...] = (),
    speculation: SpeculationConfig | None = None,
    max_task_retries: int = 10,
):
    """One (scheduler, fault/speculation arm) run, as a self-contained cell.

    An empty ``timeline`` is the fault-free arm; a non-empty one layers the
    outage replay on; ``speculation`` additionally enables the mitigation
    arm.  All state is derived from the arguments (the caller passes fresh
    topology/scheduler objects), never from global RNG or module caches, so
    two cells run in the same process in either order produce identical
    outputs — the isolation contract :mod:`repro.experiments.sweep` shards
    against.

    Returns ``(metrics, counters)`` where ``counters`` merges the fault and
    speculation summaries (empty for a plain fault-free run).
    """
    if timeline:
        config = dataclasses.replace(
            config, faults=tuple(timeline), max_task_retries=max_task_retries
        )
    if speculation is not None:
        config = dataclasses.replace(config, speculation=speculation)
    sim = MapReduceSimulator(topology, scheduler, jobs, config)
    metrics = sim.run()
    counters: dict[str, int] = {}
    if sim.faults is not None:
        counters.update(sim.faults.summary())
    if sim.speculation is not None:
        counters.update(sim.speculation.summary())
    return metrics, counters


def run_chaos_cell(
    topology_factory,
    scheduler_factory,
    jobs_factory,
    config,
    *,
    seed: int,
    trials: int = 6,
    horizon: float = 4.0,
    partition_every: int = 4,
    max_task_retries: int = 8,
    stall_limit: int = 20_000,
    rerun: bool = True,
) -> dict:
    """One chaos arm as a sweep cell: ``trials`` seeded randomized fault
    timelines through the cell's own fabric/scheduler/workload, each graded
    against the survivability contract (see :mod:`repro.faults.chaos`).

    The factories must return *fresh* objects on every call — each trial
    (and its determinism rerun) rebuilds the whole stack, preserving the
    sweep's cell-isolation contract.  Trial *i* samples with seed
    ``seed + i``; every ``partition_every``-th trial drops the partition
    guard.  Returns plain data: an aggregate summary, summed fault counters
    and the per-trial contract verdicts.
    """
    from ..faults.chaos import (
        _ChaosSimulator,
        graded_run,
        sample_chaos_timeline,
    )

    trial_rows: list[dict] = []
    totals: dict[str, float] = {}
    for i in range(trials):
        trial_seed = seed + i
        allow_partition = (
            partition_every > 0 and i % partition_every == partition_every - 1
        )
        timeline = sample_chaos_timeline(
            topology_factory(),
            seed=trial_seed,
            horizon=horizon,
            allow_partition=allow_partition,
        )

        def make_build(
            provenance=None, sink=None, timeline=timeline,
            trial_seed=trial_seed,
        ):
            def build():
                jobs = jobs_factory()
                sim = _ChaosSimulator(
                    topology_factory(),
                    scheduler_factory(),
                    jobs,
                    dataclasses.replace(
                        config,
                        seed=trial_seed,
                        faults=tuple(timeline),
                        max_task_retries=max_task_retries,
                        provenance=provenance,
                    ),
                    stall_limit=stall_limit,
                )
                if sink is not None:
                    sink.append(sim)
                return sim, len(jobs)

            return build

        build = make_build()
        status, reason, fingerprint, counters, violations = graded_run(
            build, max_task_retries=max_task_retries
        )
        violations = list(violations)
        if rerun:
            again = graded_run(build, max_task_retries=max_task_retries)
            if (again[0], again[1], again[2]) != (status, reason, fingerprint):
                violations.append(
                    f"nondeterministic rerun: {fingerprint[:12]} vs "
                    f"{again[2][:12]}"
                )
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
        row = {
            "trial": i,
            "seed": trial_seed,
            "allow_partition": allow_partition,
            "num_specs": len(timeline),
            "status": status,
            "reason": reason,
            "fingerprint": fingerprint,
            "violations": violations,
        }
        if status == "failed" or violations:
            # Ship the trial's own explanation: a provenance-enabled
            # rerun (faithful by byte-identity) yields the decision
            # fingerprint and reason-code tallies.
            sims: list = []
            graded_run(
                make_build(ProvenanceConfig(ring_size=1024), sims),
                max_task_retries=max_task_retries,
            )
            if sims:
                digest = decision_digest(sims[-1].provenance)
                if digest:
                    row["provenance"] = digest
        trial_rows.append(row)
    return {
        "summary": {
            "trials": float(trials),
            "ok": float(sum(1 for t in trial_rows if t["status"] == "ok")),
            "failed_accounted": float(
                sum(
                    1
                    for t in trial_rows
                    if t["status"] == "failed" and not t["violations"]
                )
            ),
            "violations": float(
                sum(len(t["violations"]) for t in trial_rows)
            ),
        },
        # Counters are integral except the dwell gauge; keep its precision.
        "counters": {
            k: int(v) if float(v).is_integer() else round(float(v), 9)
            for k, v in sorted(totals.items())
        },
        "trials": trial_rows,
    }


def _degradation(clean: float, faulty: float) -> float:
    """Relative increase of a lower-is-better metric under faults:
    ``faulty / clean - 1`` (0 = faults cost nothing)."""
    if clean == 0:
        return 0.0
    return faulty / clean - 1.0


@dataclass
class FaultRunResult:
    """One scheduler's fault-free vs faulty (vs mitigated) runs."""

    clean: MetricsCollector
    faulty: MetricsCollector
    fault_counters: dict[str, int]
    #: Same fault timeline with speculative execution enabled, when the
    #: harness was asked for a mitigation arm.
    mitigated: MetricsCollector | None = None
    spec_counters: dict[str, int] = field(default_factory=dict)

    @property
    def jct_degradation(self) -> float:
        """Relative mean-JCT increase caused by the fault timeline."""
        return _degradation(self.clean.mean_jct(), self.faulty.mean_jct())

    @property
    def makespan_degradation(self) -> float:
        return _degradation(
            self.clean.summary()["makespan"], self.faulty.summary()["makespan"]
        )

    @property
    def mitigation_gain(self) -> float:
        """Fraction of the faulty mean JCT that speculation clawed back
        (positive = speculation helped; 0.0 without a mitigation arm)."""
        if self.mitigated is None:
            return 0.0
        faulty = self.faulty.mean_jct()
        if faulty == 0:
            return 0.0
        return 1.0 - self.mitigated.mean_jct() / faulty


@dataclass
class FaultComparisonResult:
    """All schedulers against one shared fault timeline."""

    timeline: tuple[FaultSpec, ...] = ()
    runs: dict[str, FaultRunResult] = field(default_factory=dict)

    def table(self) -> list[dict[str, object]]:
        """Flat rows for printing/CSV: one per scheduler."""
        rows: list[dict[str, object]] = []
        for name, run in self.runs.items():
            counters = run.fault_counters
            row: dict[str, object] = {
                "scheduler": name,
                "clean_mean_jct": run.clean.mean_jct(),
                "faulty_mean_jct": run.faulty.mean_jct(),
                "jct_degradation": run.jct_degradation,
                "clean_makespan": run.clean.summary()["makespan"],
                "faulty_makespan": run.faulty.summary()["makespan"],
                "makespan_degradation": run.makespan_degradation,
                "map_retries": counters.get("retries.map", 0),
                "reduce_retries": counters.get("retries.reduce", 0),
                "flows_killed": counters.get("faults.flows_killed", 0),
                "flows_parked": counters.get("faults.flows_parked", 0),
            }
            if run.mitigated is not None:
                row["mitigated_mean_jct"] = run.mitigated.mean_jct()
                row["mitigation_gain"] = run.mitigation_gain
                row["spec_wins"] = run.spec_counters.get("spec.wins", 0)
                row["spec_launched"] = run.spec_counters.get(
                    "spec.launched", 0
                )
            rows.append(row)
        return rows


def straggler_timeline(
    topology,
    fraction: float = 0.1,
    factor: float = 6.0,
    start: float = 0.0,
    duration: float = 0.0,
) -> tuple[FaultSpec, ...]:
    """Scripted straggler scenario: slow ~``fraction`` of the servers.

    Degraded servers are picked evenly across the fabric (every
    ``1/fraction``-th server id), which on a tree spreads them over racks —
    the realistic shape for contention stragglers.  ``duration`` > 0 makes
    the episodes transient (the injector schedules the restores).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if factor <= 1.0:
        raise ValueError(f"straggler factor must exceed 1.0, got {factor}")
    stride = max(1, round(1.0 / fraction))
    return tuple(
        FaultSpec(
            start,
            FaultKind.TASK_SLOWDOWN,
            sid,
            factor=factor,
            duration=duration,
        )
        for sid in topology.server_ids[::stride]
    )


def fault_degradation(
    seed: int = 0,
    num_jobs: int = 12,
    scheduler_names: tuple[str, ...] = ("capacity", "capacity-ecmp", "random", "hit"),
    timeline: tuple[FaultSpec, ...] | None = None,
    server_mtbf: float = 8.0,
    server_mttr: float = 0.5,
    switch_mtbf: float = 20.0,
    switch_mttr: float = 0.5,
    horizon: float = 8.0,
    max_task_retries: int = 10,
    speculation: SpeculationConfig | None = None,
) -> FaultComparisonResult:
    """Run every scheduler clean and under one shared fault timeline.

    Pass an explicit ``timeline`` for a scripted scenario; by default a
    seeded MTBF/MTTR timeline is sampled once (on the testbed fabric) and
    replayed verbatim for each baseline.  With ``speculation`` set, each
    scheduler gets a third run — the same faulty timeline with speculative
    execution enabled — reported as the *mitigated* arm.
    """
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    if timeline is None:
        timeline = generate_timeline(
            configs.testbed_tree(),
            seed=seed,
            horizon=horizon,
            server_mtbf=server_mtbf,
            server_mttr=server_mttr,
            switch_mtbf=switch_mtbf,
            switch_mttr=switch_mttr,
        )
    result = FaultComparisonResult(timeline=timeline)
    base_config = configs.testbed_simulation_config(seed=seed)
    for name in scheduler_names:
        clean, _ = run_fault_cell(
            configs.testbed_tree(), make_scheduler(name, seed=seed), jobs, base_config
        )
        faulty, fault_counters = run_fault_cell(
            configs.testbed_tree(),
            make_scheduler(name, seed=seed),
            jobs,
            base_config,
            timeline=timeline,
            max_task_retries=max_task_retries,
        )
        run = FaultRunResult(
            clean=clean, faulty=faulty, fault_counters=fault_counters
        )
        if speculation is not None:
            mitigated, spec_counters = run_fault_cell(
                configs.testbed_tree(),
                make_scheduler(name, seed=seed),
                jobs,
                base_config,
                timeline=timeline,
                speculation=speculation,
                max_task_retries=max_task_retries,
            )
            run.mitigated = mitigated
            run.spec_counters = spec_counters
        result.runs[name] = run
    return result
