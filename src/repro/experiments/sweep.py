"""Sharded, resumable experiment sweeps with a byte-identity merge contract.

Figure-scale reproduction runs the same grid over and over: *seeds x
schedulers x topologies x workloads x fault/speculation arms*.  The grid is
embarrassingly parallel, but parallelism is only admissible if it can never
change results — the per-run byte-identity contract
(``tests/simulator/test_determinism.py``) must extend to whole sweeps.  This
module is that extension:

* :class:`SweepSpec` — a declarative grid; :meth:`SweepSpec.cells`
  enumerates one :class:`CellConfig` per grid point in **canonical order**
  (sorted by each cell's canonical JSON), independent of spec key order or
  list order.
* :func:`CellConfig.config_hash` — sha256 over the cell's canonical JSON
  (:func:`repro.analysis.report.canonical_json`): stable across process
  restarts and dict key permutations, sensitive to every semantic field.
* :func:`run_cell` — executes one cell from nothing but its config (fresh
  topology, fresh workload, fresh scheduler, all seeded), returning plain
  JSON-serialisable data.  Cells never touch global RNG state or shared
  module caches, so they can run in any order, in any process.
* Artifact cache — each finished cell is written atomically to
  ``<cache_dir>/<config_hash>.json`` with a checksum over its result;
  :func:`run_sweep` skips cells whose artifact loads and verifies, which is
  what makes an interrupted sweep resumable (corrupt or stale artifacts are
  recomputed, never merged).
* :func:`run_sweep` — shards pending cells across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or runs
  them inline; either way results land in the cache and the merge reads only
  the cache.
* :func:`merge_sweep` — loads every cell in canonical order and renders the
  merged document via :func:`repro.analysis.report.render_sweep_report`.

**The byte-identity contract:** for a fixed grid spec and code version, the
merged report is byte-identical regardless of worker count, worker
scheduling, or how many interrupt/resume cycles produced the cache
(``tests/experiments/test_sweep_determinism.py`` enforces this in CI).
Artifacts therefore contain only deterministic content — configs, simulated
results, checksums — never wall-clock timings (those go to the
:mod:`repro.obs` tracer instead).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..analysis.report import canonical_json, render_sweep_report
from ..cluster.resources import Resources
from ..faults import generate_timeline
from ..mapreduce.workload import WorkloadGenerator
from ..obs.runtime import STATE as _OBS
from ..obs.tracer import TimerStat
from ..schedulers import make_scheduler
from ..simulator.engine import SimulationConfig
from ..speculation import SpeculationConfig
from ..topology.base import Topology
from ..topology.tree import TreeConfig, build_tree
from . import configs
from .faults import run_chaos_cell, run_fault_cell
from .static import run_static_cell
from .telemetry import run_telemetry_cell

__all__ = [
    "SWEEP_FORMAT",
    "ARMS",
    "CellConfig",
    "SweepSpec",
    "SweepRunResult",
    "build_cell_topology",
    "build_cell_workload",
    "run_cell",
    "cell_artifact_path",
    "write_cell_artifact",
    "load_cell_artifact",
    "run_sweep",
    "merge_sweep",
]

#: Version tag stamped into every artifact and merged report; bump on any
#: change to the cell semantics so stale caches invalidate themselves.
SWEEP_FORMAT = "repro.sweep.v1"

#: Fault/speculation arms a cell can run.
ARMS = (
    "baseline",
    "chaos",
    "faults",
    "faults+speculation",
    "online",
    "static",
    "telemetry",
)

#: Arms that sample and replay a fault timeline.
_FAULT_ARMS = ("faults", "faults+speculation")

DEFAULT_WORKLOAD: dict[str, Any] = {
    "num_jobs": 8,
    "interarrival": 0.5,
    "min_size": 4.0,
    "max_size": 12.0,
    "map_rate": 8.0,
    "reduce_rate": 8.0,
}

DEFAULT_FAULT: dict[str, Any] = {
    "server_mtbf": 8.0,
    "server_mttr": 0.5,
    "switch_mtbf": 20.0,
    "switch_mttr": 0.5,
    "slowdown_mtbf": None,
    "slowdown_mttr": 0.5,
    "slowdown_factor": 4.0,
    "horizon": 8.0,
    "max_task_retries": 10,
}

DEFAULT_SPECULATION: dict[str, Any] = {"quota": 0.2, "threshold": 0.7}

#: Chaos-arm knobs (randomized survivability campaigns; ``rerun`` is an
#: int flag — the normaliser has no bool type).
DEFAULT_CHAOS: dict[str, Any] = {
    "trials": 6,
    "horizon": 4.0,
    "partition_every": 4,
    "max_task_retries": 8,
    "stall_limit": 20_000,
    "rerun": 1,
}

#: Online-arm knobs (open-loop overload cells; ``multiplier`` is in units
#: of the estimated saturation rate, ``rerun`` an int flag like chaos).
DEFAULT_ONLINE: dict[str, Any] = {
    "multiplier": 1.5,
    "tenants": 2,
    "profile": "poisson",
    "policy": "queue-bound",
    "queue_bound": 8,
    "duration": 3.0,
    "min_size": 2.0,
    "max_size": 6.0,
    "stall_limit": 50_000,
    "rerun": 1,
}

#: Simulated-time sampling step for ``telemetry`` arm cells.
_TELEMETRY_DT = 0.05


# ---------------------------------------------------------------- normalising
def _normalized(
    section: str, raw: Mapping[str, Any], defaults: Mapping[str, Any]
) -> dict[str, Any]:
    """Defaults merged with ``raw``, values coerced to canonical types.

    Numeric coercion (int stays int, everything else becomes float; string
    defaults stay strings) makes the hash insensitive to JSON round-trips —
    ``8`` and ``8.0`` for a rate knob must not be two different cells.
    Unknown keys are an error: a typo silently ignored would *weaken* the
    hash (two specs differing only in the typo'd knob would collide).
    """
    unknown = set(raw) - set(defaults)
    if unknown:
        raise ValueError(
            f"unknown {section} field(s): {sorted(unknown)} "
            f"(known: {sorted(defaults)})"
        )
    out: dict[str, Any] = {}
    for key, default in defaults.items():
        value = raw.get(key, default)
        if value is None:
            out[key] = None
        elif isinstance(default, str):
            out[key] = str(value)
        elif isinstance(default, int) and not isinstance(default, bool):
            out[key] = int(value)
        else:
            out[key] = float(value)
    return out


def _normalize_topology(raw: str | Mapping[str, Any]) -> dict[str, Any]:
    """Topology spec entry -> canonical dict (``"testbed"`` and
    ``{"name": "testbed"}`` are the same cell)."""
    if isinstance(raw, str):
        raw = {"name": raw}
    if "name" not in raw:
        raise ValueError(f"topology spec needs a 'name': {raw!r}")
    name = str(raw["name"])
    params = {k: v for k, v in raw.items() if k != "name"}
    defaults = _TOPOLOGY_PARAMS.get(name)
    if defaults is None:
        raise ValueError(
            f"unknown topology {name!r} (known: {sorted(_TOPOLOGY_PARAMS)})"
        )
    return {"name": name, **_normalized(f"topology[{name}]", params, defaults)}


# ------------------------------------------------------------------ the cell
@dataclass
class CellConfig:
    """One grid point: everything needed to run (and cache) a single cell."""

    seed: int
    scheduler: str
    topology: dict[str, Any]
    arm: str
    workload: dict[str, Any]
    #: Fault-timeline knobs; present only on fault arms so baseline caches
    #: survive fault-parameter changes.
    fault: dict[str, Any] | None = None
    #: Speculation knobs; present only on the mitigation arm.
    speculation: dict[str, Any] | None = None
    #: Chaos-campaign knobs; present only on the chaos arm (absent keys keep
    #: every pre-chaos cell hash unchanged).
    chaos: dict[str, Any] | None = None
    #: Overload-campaign knobs; present only on the online arm (same
    #: hash-preservation rationale).
    online: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (the hashing/serialisation substrate)."""
        out: dict[str, Any] = {
            "format": SWEEP_FORMAT,
            "seed": int(self.seed),
            "scheduler": self.scheduler,
            "topology": dict(self.topology),
            "arm": self.arm,
            "workload": dict(self.workload),
        }
        if self.fault is not None:
            out["fault"] = dict(self.fault)
        if self.speculation is not None:
            out["speculation"] = dict(self.speculation)
        if self.chaos is not None:
            out["chaos"] = dict(self.chaos)
        if self.online is not None:
            out["online"] = dict(self.online)
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CellConfig":
        """Rebuild a cell from (possibly hand-written) plain data,
        re-normalising every section so the round-trip is canonical."""
        arm = str(raw["arm"])
        if arm not in ARMS:
            raise ValueError(f"unknown arm {arm!r} (known: {ARMS})")
        fault = raw.get("fault")
        speculation = raw.get("speculation")
        return cls(
            seed=int(raw["seed"]),
            scheduler=str(raw["scheduler"]),
            topology=_normalize_topology(raw["topology"]),
            arm=arm,
            workload=_normalized(
                "workload", raw.get("workload", {}), DEFAULT_WORKLOAD
            ),
            fault=(
                _normalized("fault", fault or {}, DEFAULT_FAULT)
                if arm in _FAULT_ARMS
                else None
            ),
            speculation=(
                _normalized(
                    "speculation", speculation or {}, DEFAULT_SPECULATION
                )
                if arm == "faults+speculation"
                else None
            ),
            chaos=(
                _normalized("chaos", raw.get("chaos") or {}, DEFAULT_CHAOS)
                if arm == "chaos"
                else None
            ),
            online=(
                _normalized("online", raw.get("online") or {}, DEFAULT_ONLINE)
                if arm == "online"
                else None
            ),
        )

    def canonical(self) -> str:
        """The cell's canonical JSON: the hash input and the sort key."""
        return canonical_json(self.to_dict())

    def config_hash(self) -> str:
        """sha256 over the canonical JSON.

        Stable across process restarts (no ``hash()``/``PYTHONHASHSEED``
        anywhere), insensitive to dict key order (keys are sorted), and
        sensitive to every semantic field (they are all in
        :meth:`to_dict`).
        """
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identity for logs and trace lines."""
        return (
            f"{self.topology['name']}/{self.scheduler}"
            f"/seed{self.seed}/{self.arm}"
        )


# ----------------------------------------------------- topologies & workloads
#: Per-topology tunable parameters (and their canonical defaults).  Every
#: parameter is part of the cell hash, so changing e.g. ``redundancy``
#: invalidates exactly the affected cells.
_TOPOLOGY_PARAMS: dict[str, dict[str, Any]] = {
    "testbed": {"redundancy": 2},
    "large64": {"redundancy": 2},
    "large512": {"redundancy": 2},
    "mini": {"depth": 2, "fanout": 4, "redundancy": 2, "slots": 3.0},
}


def build_cell_topology(topo: Mapping[str, Any]) -> Topology:
    """Fresh topology for one cell (registry keyed by ``topo['name']``)."""
    name = topo["name"]
    if name == "testbed":
        return configs.testbed_tree(redundancy=int(topo["redundancy"]))
    if name == "large64":
        return configs.large_tree(
            num_servers=64, redundancy=int(topo["redundancy"])
        )
    if name == "large512":
        return configs.large_tree(
            num_servers=512, redundancy=int(topo["redundancy"])
        )
    if name == "mini":
        return build_tree(
            TreeConfig(
                depth=int(topo["depth"]),
                fanout=int(topo["fanout"]),
                redundancy=int(topo["redundancy"]),
                server_resources=(float(topo["slots"]),),
            )
        )
    raise ValueError(f"unknown topology {name!r}")


def build_cell_workload(cell: CellConfig) -> list:
    """Fresh Table-1-style workload for one cell, seeded from the cell."""
    w = cell.workload
    generator = WorkloadGenerator(
        seed=cell.seed,
        input_size_range=(w["min_size"], w["max_size"]),
        split_size=1.0,
        reduces_per_maps=0.25,
        map_rate=w["map_rate"],
        reduce_rate=w["reduce_rate"],
    )
    return generator.make_workload(
        int(w["num_jobs"]), interarrival=w["interarrival"]
    )


# ------------------------------------------------------------- cell execution
def _cell_timeline(cell: CellConfig, topology: Topology):
    """Sample the cell's fault timeline (empty for non-fault arms)."""
    if cell.fault is None:
        return ()
    f = cell.fault
    return generate_timeline(
        topology,
        seed=cell.seed,
        horizon=f["horizon"],
        server_mtbf=f["server_mtbf"],
        server_mttr=f["server_mttr"],
        switch_mtbf=f["switch_mtbf"],
        switch_mttr=f["switch_mttr"],
        slowdown_mtbf=f["slowdown_mtbf"],
        slowdown_mttr=f["slowdown_mttr"],
        slowdown_factor=f["slowdown_factor"],
    )


def run_cell(cell: CellConfig) -> dict[str, Any]:
    """Execute one cell from nothing but its config; return plain data.

    Topology, workload, scheduler, fault timeline and simulation config are
    all rebuilt fresh inside the call and seeded from ``cell.seed`` — the
    function reads no global RNG and mutates no shared state, so the result
    depends only on the config (and the code version), never on which
    process or in which order the cell ran.
    """
    topology = build_cell_topology(cell.topology)
    jobs = build_cell_workload(cell)
    if cell.arm == "static":
        return run_static_cell(topology, jobs, cell.scheduler, seed=cell.seed)
    config = SimulationConfig(
        container_demand=Resources(1.0, 0.0),
        map_slots_per_job=16,
        seed=cell.seed,
    )
    if cell.arm == "chaos":
        c = cell.chaos
        assert c is not None
        return run_chaos_cell(
            lambda: build_cell_topology(cell.topology),
            lambda: make_scheduler(cell.scheduler, seed=cell.seed),
            lambda: build_cell_workload(cell),
            config,
            seed=cell.seed,
            trials=int(c["trials"]),
            horizon=float(c["horizon"]),
            partition_every=int(c["partition_every"]),
            max_task_retries=int(c["max_task_retries"]),
            stall_limit=int(c["stall_limit"]),
            rerun=bool(int(c["rerun"])),
        )
    if cell.arm == "online":
        from .online import run_online_cell

        o = cell.online
        assert o is not None
        return run_online_cell(
            lambda: build_cell_topology(cell.topology),
            lambda: make_scheduler(cell.scheduler, seed=cell.seed),
            config,
            seed=cell.seed,
            multiplier=float(o["multiplier"]),
            tenants=int(o["tenants"]),
            profile=str(o["profile"]),
            policy=str(o["policy"]),
            queue_bound=int(o["queue_bound"]),
            duration=float(o["duration"]),
            min_size=float(o["min_size"]),
            max_size=float(o["max_size"]),
            stall_limit=int(o["stall_limit"]),
            rerun=bool(int(o["rerun"])),
        )
    scheduler = make_scheduler(cell.scheduler, seed=cell.seed)
    if cell.arm == "telemetry":
        import dataclasses

        run = run_telemetry_cell(
            topology,
            scheduler,
            jobs,
            dataclasses.replace(config, timeline_dt=_TELEMETRY_DT),
        )
        return {
            "summary": {k: float(v) for k, v in run.metrics.summary().items()},
            "segments": {k: float(v) for k, v in run.mean_segments.items()},
            "counters": {k: int(v) for k, v in sorted(run.counters.items())},
        }
    timeline = _cell_timeline(cell, topology)
    speculation = None
    max_retries = 10
    if cell.fault is not None:
        max_retries = int(cell.fault["max_task_retries"])
    if cell.speculation is not None:
        s = cell.speculation
        speculation = SpeculationConfig(quota=s["quota"], threshold=s["threshold"])
    metrics, counters = run_fault_cell(
        topology,
        scheduler,
        jobs,
        config,
        timeline=timeline,
        speculation=speculation,
        max_task_retries=max_retries,
    )
    return {
        "summary": {k: float(v) for k, v in metrics.summary().items()},
        "counters": {k: int(v) for k, v in sorted(counters.items())},
    }


# -------------------------------------------------------------- the artifact
def cell_artifact_path(cache_dir: str | Path, cell: CellConfig) -> Path:
    """Where one cell's cached result lives: ``<cache>/<hash>.json``."""
    return Path(cache_dir) / f"{cell.config_hash()}.json"


def _result_checksum(result: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(result).encode("utf-8")).hexdigest()


def write_cell_artifact(
    cache_dir: str | Path, cell: CellConfig, result: Mapping[str, Any]
) -> Path:
    """Atomically persist one cell's result (write temp file, then rename).

    The artifact embeds the full config (auditability), the config hash
    (cheap identity check) and a checksum over the result (corruption
    detection on resume).  Atomic rename means an interrupted sweep leaves
    either a complete artifact or none — never a half-written one that a
    resume would have to guess about.
    """
    path = cell_artifact_path(cache_dir, cell)
    body = {
        "format": SWEEP_FORMAT,
        "hash": cell.config_hash(),
        "config": cell.to_dict(),
        "result": dict(result),
        "checksum": _result_checksum(result),
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(canonical_json(body) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_cell_artifact(
    cache_dir: str | Path, cell: CellConfig
) -> dict[str, Any] | None:
    """The cell's cached result, or ``None`` when it must be (re)computed.

    ``None`` covers every unusable state uniformly — missing file,
    unparseable JSON, format/hash mismatch (stale cache from other code or
    another cell) and checksum mismatch (bit rot, truncation, tampering).
    A corrupt artifact is never merged; it is recomputed.
    """
    path = cell_artifact_path(cache_dir, cell)
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(body, dict) or body.get("format") != SWEEP_FORMAT:
        return None
    if body.get("hash") != cell.config_hash():
        return None
    result = body.get("result")
    if not isinstance(result, dict):
        return None
    if body.get("checksum") != _result_checksum(result):
        return None
    return result


# ------------------------------------------------------------------ the grid
@dataclass
class SweepSpec:
    """Declarative sweep grid: the cross product of the axis lists.

    Axis lists are deduplicated and sorted at construction, so two specs
    describing the same *set* of cells (in any order, with any dict key
    order) are the same spec — same ``spec_hash``, same cells, same merged
    bytes.
    """

    seeds: tuple[int, ...]
    schedulers: tuple[str, ...]
    topologies: tuple[dict[str, Any], ...]
    arms: tuple[str, ...]
    workload: dict[str, Any]
    fault: dict[str, Any]
    speculation: dict[str, Any]
    chaos: dict[str, Any] = field(default_factory=lambda: dict(DEFAULT_CHAOS))
    online: dict[str, Any] = field(
        default_factory=lambda: dict(DEFAULT_ONLINE)
    )

    _SECTIONS = (
        "seeds", "schedulers", "topologies", "arms",
        "workload", "fault", "speculation", "chaos", "online",
    )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SweepSpec":
        unknown = set(raw) - set(cls._SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown sweep spec section(s): {sorted(unknown)} "
                f"(known: {list(cls._SECTIONS)})"
            )
        seeds = tuple(sorted({int(s) for s in raw.get("seeds", (0,))}))
        schedulers = tuple(sorted({str(s) for s in raw.get("schedulers", ())}))
        if not schedulers:
            raise ValueError("sweep spec needs at least one scheduler")
        for name in schedulers:
            make_scheduler(name)  # validate eagerly; raises on unknown names
        arms = tuple(sorted({str(a) for a in raw.get("arms", ("baseline",))}))
        for arm in arms:
            if arm not in ARMS:
                raise ValueError(f"unknown arm {arm!r} (known: {ARMS})")
        topologies = [
            _normalize_topology(t) for t in raw.get("topologies", ("testbed",))
        ]
        topologies = tuple(
            sorted(
                {canonical_json(t): t for t in topologies}.values(),
                key=canonical_json,
            )
        )
        return cls(
            seeds=seeds,
            schedulers=schedulers,
            topologies=topologies,
            arms=arms,
            workload=_normalized(
                "workload", raw.get("workload", {}), DEFAULT_WORKLOAD
            ),
            fault=_normalized("fault", raw.get("fault", {}), DEFAULT_FAULT),
            speculation=_normalized(
                "speculation", raw.get("speculation", {}), DEFAULT_SPECULATION
            ),
            chaos=_normalized("chaos", raw.get("chaos", {}), DEFAULT_CHAOS),
            online=_normalized(
                "online", raw.get("online", {}), DEFAULT_ONLINE
            ),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SWEEP_FORMAT,
            "seeds": list(self.seeds),
            "schedulers": list(self.schedulers),
            "topologies": [dict(t) for t in self.topologies],
            "arms": list(self.arms),
            "workload": dict(self.workload),
            "fault": dict(self.fault),
            "speculation": dict(self.speculation),
            "chaos": dict(self.chaos),
            "online": dict(self.online),
        }

    def spec_hash(self) -> str:
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    def cells(self) -> list[CellConfig]:
        """Every grid point, in canonical order (sorted by canonical JSON).

        The order depends only on the cell *set*, never on spec axis order,
        shard assignment or resume history — it is the order the merge
        writes, which is what makes merged output byte-identical.
        """
        out: list[CellConfig] = []
        for seed in self.seeds:
            for scheduler in self.schedulers:
                for topology in self.topologies:
                    for arm in self.arms:
                        out.append(
                            CellConfig(
                                seed=seed,
                                scheduler=scheduler,
                                topology=dict(topology),
                                arm=arm,
                                workload=dict(self.workload),
                                fault=(
                                    dict(self.fault)
                                    if arm in _FAULT_ARMS
                                    else None
                                ),
                                speculation=(
                                    dict(self.speculation)
                                    if arm == "faults+speculation"
                                    else None
                                ),
                                chaos=(
                                    dict(self.chaos)
                                    if arm == "chaos"
                                    else None
                                ),
                                online=(
                                    dict(self.online)
                                    if arm == "online"
                                    else None
                                ),
                            )
                        )
        return sorted(out, key=CellConfig.canonical)


# ---------------------------------------------------------------- the runner
@dataclass
class SweepRunResult:
    """What one :func:`run_sweep` invocation did (not the merged data)."""

    spec: SweepSpec
    cells: list[CellConfig]
    #: Config hashes computed in this invocation, in completion order.
    ran: list[str] = field(default_factory=list)
    #: Config hashes served from valid cached artifacts.
    cached: list[str] = field(default_factory=list)
    #: Config hash -> error string for cells that raised.
    failed: dict[str, str] = field(default_factory=dict)
    #: Config hash -> wall-clock seconds (ran cells only; never merged).
    elapsed_s: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed


def _pool_run_cell(
    cell_dict: dict[str, Any], cache_dir: str
) -> tuple[str, float, str | None]:
    """Worker-process entry point: run one cell and write its artifact.

    Takes/returns only picklable plain data.  Errors come back as strings
    rather than raising so one bad cell cannot tear down the pool (the
    parent records it in :attr:`SweepRunResult.failed`).
    """
    cell = CellConfig.from_dict(cell_dict)
    start = time.perf_counter()
    try:
        result = run_cell(cell)
        write_cell_artifact(cache_dir, cell, result)
        return cell.config_hash(), time.perf_counter() - start, None
    except Exception as exc:  # noqa: BLE001 - marshalled to the parent
        return (
            cell.config_hash(),
            time.perf_counter() - start,
            f"{type(exc).__name__}: {exc}",
        )


def _trace_cell(cell: CellConfig, elapsed: float, error: str | None) -> None:
    """Per-cell obs hook: aggregate timer + one JSONL event when tracing."""
    if not _OBS.enabled:
        return
    tracer = _OBS.tracer
    tracer.count("sweep.cells_failed" if error else "sweep.cells_ran")
    tracer.timers.setdefault("sweep.cell", TimerStat()).add(elapsed)
    tracer.event(
        "sweep.cell",
        cell=cell.label(),
        hash=cell.config_hash()[:12],
        dur_ms=round(elapsed * 1e3, 3),
        ok=error is None,
        **({"error": error} if error else {}),
    )


def run_sweep(
    spec: SweepSpec,
    cache_dir: str | Path,
    workers: int = 1,
    force: bool = False,
) -> SweepRunResult:
    """Run (or resume) a sweep: compute every cell not already cached.

    ``workers > 1`` shards pending cells across a process pool; ``force``
    recomputes everything, ignoring (and overwriting) cached artifacts.
    Failed cells are recorded, not raised — the caller decides (the CLI
    exits non-zero; a later resume retries exactly the failed/missing
    cells, because failures never write artifacts).
    """
    cache = Path(cache_dir)
    cache.mkdir(parents=True, exist_ok=True)
    cells = spec.cells()
    result = SweepRunResult(spec=spec, cells=cells)
    pending: list[CellConfig] = []
    for cell in cells:
        if not force and load_cell_artifact(cache, cell) is not None:
            result.cached.append(cell.config_hash())
        else:
            pending.append(cell)

    if workers <= 1:
        for cell in pending:
            start = time.perf_counter()
            error: str | None = None
            try:
                write_cell_artifact(cache, cell, run_cell(cell))
            except Exception as exc:  # noqa: BLE001 - collected, not raised
                error = f"{type(exc).__name__}: {exc}"
            elapsed = time.perf_counter() - start
            _finish_cell(result, cell, elapsed, error)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_run_cell, cell.to_dict(), str(cache)): cell
                for cell in pending
            }
            for future in as_completed(futures):
                cell = futures[future]
                _, elapsed, error = future.result()
                _finish_cell(result, cell, elapsed, error)

    if _OBS.enabled:
        _OBS.tracer.event(
            "sweep.summary",
            spec_hash=spec.spec_hash()[:12],
            cells=len(cells),
            ran=len(result.ran),
            cached=len(result.cached),
            failed=len(result.failed),
            workers=workers,
        )
    return result


def _finish_cell(
    result: SweepRunResult, cell: CellConfig, elapsed: float, error: str | None
) -> None:
    cell_hash = cell.config_hash()
    result.elapsed_s[cell_hash] = elapsed
    if error is None:
        result.ran.append(cell_hash)
    else:
        result.failed[cell_hash] = error
    _trace_cell(cell, elapsed, error)


# ----------------------------------------------------------------- the merge
def merge_sweep(spec: SweepSpec, cache_dir: str | Path) -> str:
    """Merged report of a completed sweep, from the cache alone.

    Cells are loaded and emitted in canonical order; a missing or corrupt
    artifact raises (merging a partial sweep silently would *look*
    byte-stable while dropping data).  The returned string's bytes are the
    sweep byte-identity contract.
    """
    entries: list[dict[str, Any]] = []
    for cell in spec.cells():
        result = load_cell_artifact(cache_dir, cell)
        if result is None:
            raise FileNotFoundError(
                f"missing or corrupt artifact for cell {cell.label()} "
                f"({cell.config_hash()}) in {cache_dir} — "
                "run the sweep (again) before merging"
            )
        entries.append(
            {"hash": cell.config_hash(), "config": cell.to_dict(), "result": result}
        )
    return render_sweep_report(
        spec.to_dict(), entries, spec.spec_hash(), format_id=SWEEP_FORMAT
    )
