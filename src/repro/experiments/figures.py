"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation; each returns a
plain-data result object that the corresponding benchmark prints and asserts
on.  Keeping the drivers importable (instead of inline in benchmark files)
lets the examples and the test suite reuse them at smaller scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.stats import improvement
from ..cluster.container import Container, TaskKind, TaskRef
from ..cluster.resources import Resources
from ..core.hit import HitConfig, HitOptimizer
from ..core.taa import TAAInstance
from ..mapreduce.hdfs import HdfsModel
from ..mapreduce.job import JobSpec, ShuffleClass, shuffle_matrix
from ..mapreduce.shuffle import ShuffleFlow, build_flows
from ..mapreduce.workload import WorkloadGenerator
from ..schedulers import make_scheduler
from ..simulator.engine import run_simulation
from ..simulator.metrics import MetricsCollector
from ..topology.base import Topology
from . import configs
from .static import StaticResult, build_static_workload, run_static_placement

__all__ = [
    "fig1_traffic_volume",
    "fig3_case_study",
    "fig6_fig7_testbed",
    "fig8a_workload_classes",
    "fig8b_architectures",
    "fig9_bandwidth_sensitivity",
    "fig10_job_numbers",
    "CaseStudyResult",
    "TestbedResult",
]


# --------------------------------------------------------------------- Fig 1
def fig1_traffic_volume(
    seed: int = 0, jobs_per_class: int = 4
) -> dict[str, dict[str, float]]:
    """Figure 1: shuffle vs remote-Map traffic volume per workload class.

    All three classes run *together* on the testbed tree at high slot
    utilisation, placed by the Capacity scheduler (the stock setup the paper
    profiled) — contention is what produces locality misses and hence
    remote-Map traffic, exactly as on a busy production cluster.  Returns,
    per class, total shuffle volume, remote-Map volume and the shuffle share
    of that class's communication traffic.
    """
    topology = configs.testbed_tree()
    generator = WorkloadGenerator(seed=seed, input_size_range=(10.0, 16.0))
    per_class = {
        shuffle_class: generator.jobs_of_class(shuffle_class, jobs_per_class)
        for shuffle_class in ShuffleClass
    }
    # Interleave classes so placement-order artifacts don't bias which class
    # absorbs the locality misses.
    jobs = [
        job
        for i in range(jobs_per_class)
        for shuffle_class in ShuffleClass
        for job in (per_class[shuffle_class][i],)
    ]
    workload = build_static_workload(topology, jobs, seed=seed)
    result = run_static_placement(workload, make_scheduler("capacity"), seed=seed)

    out: dict[str, dict[str, float]] = {}
    for shuffle_class in ShuffleClass:
        class_jobs = [j for j in jobs if j.shuffle_class == shuffle_class]
        shuffle_volume = sum(
            f.size for f in workload.flows
            if any(f.job_id == j.job_id for j in class_jobs)
        )
        remote = 0.0
        for spec in class_jobs:
            map_ids, _ = workload.job_containers[spec.job_id]
            map_servers = {}
            for task_index, cid in enumerate(map_ids):
                sid = result.taa.cluster.container(cid).server_id
                assert sid is not None
                map_servers[task_index] = sid
            remote += workload.hdfs.remote_map_traffic(spec, map_servers)
        total = shuffle_volume + remote
        out[shuffle_class.value] = {
            "shuffle_volume": shuffle_volume,
            "remote_map_volume": remote,
            "shuffle_share": shuffle_volume / total if total else 0.0,
        }
    return out


# --------------------------------------------------------------------- Fig 3
@dataclass
class CaseStudyResult:
    """Outcome of the Section 2.3 case study reproduction."""

    baseline_cost: float
    paper_optimised_cost: float
    hit_cost: float
    improvement_vs_baseline: float


def fig3_case_study() -> CaseStudyResult:
    """Reproduce the Section 2.3 arithmetic.

    Two jobs on a 4-server, 2-rack tree: Job 1 shuffles 34 GB M1->R1, Job 2
    shuffles 10 GB M2->R2.  The observed Capacity placement put M1, M2 on S1,
    R1 on S4 (3 switches away) and R2 on S2 (1 switch): 34*3 + 10*1 =
    112 GB.T.  The paper's improved assignment (R1 -> S2, R2 -> S4) costs
    34*1 + 10*3 = 64 GB.T.  We pin the Map tasks (servers full) and let
    Hit-Scheduler optimise the Reduce placement; it should do at least as
    well as the paper's hand solution.
    """
    topology = configs.case_study_tree()
    # Server ids: 0=S1, 1=S2 (rack A), 2=S3, 3=S4 (rack B).
    demand = Resources(1.0, 0.0)
    containers = [
        Container(0, demand, TaskRef(1, TaskKind.MAP, 0)),     # M1
        Container(1, demand, TaskRef(2, TaskKind.MAP, 0)),     # M2
        Container(2, demand, TaskRef(1, TaskKind.REDUCE, 0)),  # R1
        Container(3, demand, TaskRef(2, TaskKind.REDUCE, 0)),  # R2
    ]
    flows = [
        ShuffleFlow(0, 1, 0, 0, src_container=0, dst_container=2, size=34.0, rate=34.0),
        ShuffleFlow(1, 2, 0, 0, src_container=1, dst_container=3, size=10.0, rate=10.0),
    ]

    def cost_of(placement: dict[int, int]) -> float:
        taa = TAAInstance(topology, [
            Container(c.container_id, c.demand, c.task) for c in containers
        ], flows)
        for cid, sid in placement.items():
            taa.cluster.place(cid, sid)
        taa.install_static_policies()
        total = 0.0
        for flow in flows:
            policy = taa.controller.policy_of(flow.flow_id)
            assert policy is not None
            total += flow.size * policy.length
        return total

    baseline = cost_of({0: 0, 1: 0, 2: 3, 3: 1})       # paper's observed log
    paper_best = cost_of({0: 0, 1: 0, 2: 1, 3: 3})     # paper's suggestion

    # Hit: maps fixed on S1, reduces free.
    taa = TAAInstance(topology, [
        Container(c.container_id, c.demand, c.task) for c in containers
    ], flows)
    taa.cluster.place(0, 0)
    taa.cluster.place(1, 0)
    optimizer = HitOptimizer(taa, HitConfig(seed=0))
    optimizer.optimize_initial_wave(container_ids=[2, 3])
    hit_cost = 0.0
    for flow in flows:
        policy = taa.controller.policy_of(flow.flow_id)
        assert policy is not None
        hit_cost += flow.size * policy.length
    return CaseStudyResult(
        baseline_cost=baseline,
        paper_optimised_cost=paper_best,
        hit_cost=hit_cost,
        improvement_vs_baseline=improvement(baseline, hit_cost),
    )


# ----------------------------------------------------------------- Fig 6 & 7
@dataclass
class TestbedResult:
    """Per-scheduler dynamic-simulation metrics for Figures 6 and 7."""

    metrics: dict[str, MetricsCollector] = field(default_factory=dict)

    def mean_jct(self, scheduler: str) -> float:
        return self.metrics[scheduler].mean_jct()

    def jct_improvement(self, scheduler: str, baseline: str) -> float:
        return improvement(self.mean_jct(baseline), self.mean_jct(scheduler))


def fig6_fig7_testbed(
    seed: int = 0,
    num_jobs: int = 24,
    scheduler_names: tuple[str, ...] = ("capacity", "pna", "hit"),
) -> TestbedResult:
    """Figures 6(a-c) and 7(a-b): the dynamic testbed comparison.

    Every scheduler sees the identical job stream, HDFS layout and fabric;
    only placement and policy behaviour differ.
    """
    jobs = configs.testbed_workload(seed=seed, num_jobs=num_jobs)
    result = TestbedResult()
    for name in scheduler_names:
        topology = configs.testbed_tree()
        metrics = run_simulation(
            topology,
            make_scheduler(name, seed=seed),
            jobs,
            configs.testbed_simulation_config(seed=seed),
        )
        result.metrics[name] = metrics
    return result


# -------------------------------------------------------------------- Fig 8a
def fig8a_workload_classes(
    seed: int = 0, jobs_per_class: int = 4
) -> dict[str, dict[str, float]]:
    """Figure 8(a): total-traffic-cost reduction per workload class.

    Single-class workloads on the Tree fabric; reduction of Hit and PNA
    against the Capacity placement, measured on shuffle cost (size x
    traversed switches) exactly as the paper plots it.  Absolute reductions
    run higher than the paper's (our stable matching packs jobs tightly);
    the orderings — Hit > PNA > 0 everywhere, shuffle-heavy gaining at least
    as much as shuffle-light — are the reproduction target.
    """
    topology = configs.testbed_tree()
    generator = WorkloadGenerator(seed=seed, input_size_range=(8.0, 16.0))
    out: dict[str, dict[str, float]] = {}
    for shuffle_class in ShuffleClass:
        jobs = generator.jobs_of_class(shuffle_class, jobs_per_class)
        workload = build_static_workload(topology, jobs, seed=seed)
        costs: dict[str, float] = {}
        for name in ("capacity", "pna", "hit"):
            result = run_static_placement(
                workload, make_scheduler(name, seed=seed), seed=seed
            )
            costs[name] = result.shuffle_cost
        out[shuffle_class.value] = {
            "capacity_cost": costs["capacity"],
            "hit_cost": costs["hit"],
            "pna_cost": costs["pna"],
            "hit_reduction": improvement(costs["capacity"], costs["hit"]),
            "pna_reduction": improvement(costs["capacity"], costs["pna"]),
        }
    return out


def _remote_map_cost(workload, result: StaticResult) -> float:
    """Remote-Map traffic cost: split size x switches to the nearest replica."""
    topology = workload.topology
    total = 0.0
    for spec in workload.jobs:
        map_ids, _ = workload.job_containers[spec.job_id]
        blocks = workload.hdfs.blocks_of(spec.job_id)
        for task_index, cid in enumerate(map_ids):
            sid = result.taa.cluster.container(cid).server_id
            assert sid is not None
            block = blocks[task_index]
            if block.is_local(sid):
                continue
            hops = min(
                len(
                    topology.switches_on_path(
                        topology.shortest_path(sid, replica)
                    )
                )
                for replica in block.replicas
            )
            total += spec.map_input_size * hops
    return total


# -------------------------------------------------------------------- Fig 8b
def fig8b_architectures(
    seed: int = 0, num_jobs: int = 6
) -> dict[str, dict[str, float]]:
    """Figure 8(b): shuffle cost of a shuffle-heavy workload across fabrics."""
    generator = WorkloadGenerator(seed=seed, input_size_range=(8.0, 16.0))
    jobs = generator.jobs_of_class(ShuffleClass.HEAVY, num_jobs)
    out: dict[str, dict[str, float]] = {}
    for arch_name, topology in configs.architectures_64().items():
        workload = build_static_workload(topology, jobs, seed=seed)
        row: dict[str, float] = {}
        for name in ("capacity", "pna", "hit"):
            result = run_static_placement(
                workload, make_scheduler(name, seed=seed), seed=seed
            )
            row[name] = result.shuffle_cost
        row["hit_vs_capacity"] = improvement(row["capacity"], row["hit"])
        row["hit_vs_pna"] = improvement(row["pna"], row["hit"])
        out[arch_name] = row
    return out


# --------------------------------------------------------------------- Fig 9
def fig9_bandwidth_sensitivity(
    seed: int = 0,
    bandwidths: tuple[float, ...] = (0.1, 0.5, 1.0, 5.0, 20.0, 60.0),
    num_jobs: int = 6,
    num_servers: int = 512,
) -> dict[float, dict[str, float]]:
    """Figure 9: throughput improvement vs Capacity across link bandwidths.

    For each bandwidth the identical workload is placed by each scheduler on
    the large tree; all shuffle flows then share the fabric at once (max-min
    fair) and the workload's throughput is ``volume / (compute + transfer)``
    where the transfer time is the slowest flow's drain time and the compute
    floor is bandwidth-independent.  Low bandwidth makes transfer dominate —
    static-path schedulers pile flows onto the same links and starve, which
    is where Hit gains the most (the paper's ~48% at 0.1 Mbps); at high
    bandwidth compute dominates and every scheduler converges (the paper's
    flattening right tail).
    """
    from ..simulator.network import FlowNetwork
    from ..topology.tree import TreeConfig, build_tree

    generator = WorkloadGenerator(seed=seed, input_size_range=(8.0, 16.0))
    jobs = generator.jobs_of_class(ShuffleClass.HEAVY, num_jobs)
    if num_servers == 512:
        depth, fanout = 3, 8
    elif num_servers == 64:
        depth, fanout = 3, 4
    else:
        raise ValueError("num_servers must be 64 or 512")
    # Compute floor: the workload's total map+reduce compute, which does not
    # change with link bandwidth.
    compute_floor = sum(
        spec.map_duration + spec.reduce_duration(spec.shuffle_volume / spec.num_reduces)
        for spec in jobs
    ) / len(jobs)

    out: dict[float, dict[str, float]] = {}
    for bandwidth in bandwidths:
        # Link bandwidths and switch capacities are all rate-units, so the
        # whole fabric scales with the bandwidth knob (the paper varies the
        # Mininet link bandwidth, which scales switch forwarding too).
        topology = build_tree(
            TreeConfig(
                depth=depth,
                fanout=fanout,
                redundancy=2,
                server_link_bandwidth=bandwidth,
                fabric_link_bandwidth=2.5 * bandwidth,
                access_capacity=8.0 * bandwidth,
                aggregation_capacity=32.0 * bandwidth,
                core_capacity=128.0 * bandwidth,
                server_resources=(3.0,),
            )
        )
        workload = build_static_workload(topology, jobs, seed=seed)
        throughput: dict[str, float] = {}
        for name in ("capacity", "pna", "hit"):
            result = run_static_placement(
                workload, make_scheduler(name, seed=seed), seed=seed
            )
            network = FlowNetwork(topology)
            volume = 0.0
            for flow in workload.flows:
                volume += flow.size
                policy = result.taa.controller.policy_of(flow.flow_id)
                if policy is None or len(policy.path) < 2:
                    continue  # co-located: no fabric use
                network.add_flow(flow.flow_id, policy.path, flow.size)
            network.recompute_rates()
            transfer = max(
                (f.remaining / f.rate for f in network.active_flows if f.rate > 0),
                default=0.0,
            )
            throughput[name] = volume / (compute_floor + transfer)
        out[bandwidth] = {
            "hit_improvement": (
                throughput["hit"] / throughput["capacity"] - 1.0
                if throughput["capacity"] > 0
                else 0.0
            ),
            "pna_improvement": (
                throughput["pna"] / throughput["capacity"] - 1.0
                if throughput["capacity"] > 0
                else 0.0
            ),
            **{f"throughput_{k}": v for k, v in throughput.items()},
        }
    return out


# -------------------------------------------------------------------- Fig 10
def fig10_job_numbers(
    seed: int = 0,
    job_counts: tuple[int, ...] = (3, 6, 9, 12, 15, 18),
    num_servers: int = 512,
    input_size_range: tuple[float, float] = (24.0, 48.0),
    congestion_weight: float = 2.0,
) -> dict[int, dict[str, float]]:
    """Figure 10: overall cost reduction vs the number of parallel jobs.

    Jobs are large enough to span several racks (co-location alone cannot
    win), and placements are priced by :func:`evaluate_policy_cost` with a
    congestion weight that makes oversubscribed switches expensive.  With
    few jobs there is little contention and Hit wins only on route length;
    as jobs pile on, the baselines' static paths collide and the congestion
    component grows Hit's margin — until the fabric saturates for everyone
    and the curve flattens (the paper's knee at ~12 jobs).
    """
    from .static import evaluate_policy_cost

    generator = WorkloadGenerator(
        seed=seed,
        input_size_range=input_size_range,
        map_rate=8.0,
        reduce_rate=8.0,
    )
    all_jobs = generator.make_workload(max(job_counts))
    out: dict[int, dict[str, float]] = {}
    for count in job_counts:
        jobs = all_jobs[:count]
        costs: dict[str, float] = {}
        for name in ("capacity", "pna", "hit"):
            topology = configs.large_tree(num_servers=num_servers)
            workload = build_static_workload(topology, jobs, seed=seed)
            result = run_static_placement(
                workload, make_scheduler(name, seed=seed), seed=seed
            )
            costs[name] = evaluate_policy_cost(
                result.taa, congestion_weight=congestion_weight
            )
        out[count] = {
            "hit_reduction": improvement(costs["capacity"], costs["hit"]),
            "pna_reduction": improvement(costs["capacity"], costs["pna"]),
            **{f"cost_{k}": v for k, v in costs.items()},
        }
    return out
