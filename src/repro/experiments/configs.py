"""Canonical experiment configurations.

One place for the topology/workload parameters each figure uses, so the
benchmarks, the examples and EXPERIMENTS.md all describe the same setups.

The paper's absolute scales (GbE links, GB inputs, microsecond delays) are
mapped onto simulator units: sizes are "GB", rates are "GB per time unit",
and switch-traversal cost is 1 T per switch as in the Section 2.3 case
study.  Link bandwidths are deliberately tight relative to shuffle volumes —
the paper's whole premise is a bandwidth-constrained multi-tenant cloud.
"""

from __future__ import annotations

from ..cluster.resources import Resources
from ..mapreduce.workload import WorkloadGenerator
from ..simulator.engine import SimulationConfig
from ..topology.base import Topology
from ..topology.bcube import BCubeConfig, build_bcube
from ..topology.fattree import FatTreeConfig, build_fattree
from ..topology.tree import TreeConfig, build_tree
from ..topology.vl2 import VL2Config, build_vl2

__all__ = [
    "testbed_tree",
    "case_study_tree",
    "large_tree",
    "architectures_64",
    "testbed_workload",
    "testbed_simulation_config",
]


def testbed_tree(redundancy: int = 2) -> Topology:
    """The Figure 6/7 fabric: 64 hosts under a depth-3 tree.

    The paper's Mininet run used "a tree topology of depth 3 and fanout 8
    (i.e. 64 hosts...)"; depth 3 with fanout 4 is the consistent reading
    (4^3 = 64) and gives the three-tier access/aggregation/core hierarchy of
    Figure 2.  ``redundancy=2`` populates each switch position twice so that
    flows have alternative routes — the paper's policy optimisation is
    meaningless on a redundancy-1 tree.
    """
    return build_tree(
        TreeConfig(
            depth=3,
            fanout=4,
            redundancy=redundancy,
            server_link_bandwidth=1.0,
            # 4:1.6 oversubscription at the access uplinks: cross-rack
            # shuffle must contend in the aggregation/core tiers, which is
            # the regime the paper's scheduler is designed for.
            fabric_link_bandwidth=2.5,
            access_capacity=8.0,
            aggregation_capacity=24.0,
            core_capacity=64.0,
            server_resources=(3.0,),
        )
    )


def case_study_tree() -> Topology:
    """The Section 2.3 / Figure 3 fabric: 4 servers, 2 racks, 1 core.

    Same-rack shuffle traverses 1 switch; cross-rack traverses 3 — exactly
    the delays behind the paper's 112 GB.T vs 64 GB.T arithmetic.
    """
    return build_tree(
        TreeConfig(
            depth=2,
            fanout=2,
            redundancy=1,
            server_resources=(2.0,),
            access_capacity=100.0,
            core_capacity=100.0,
        )
    )


def large_tree(num_servers: int = 512, redundancy: int = 2) -> Topology:
    """The Figure 9/10 fabric: a 512-server tree (depth 3, fanout 8)."""
    if num_servers == 512:
        depth, fanout = 3, 8
    elif num_servers == 64:
        depth, fanout = 3, 4
    else:
        raise ValueError("large_tree supports 64 or 512 servers")
    return build_tree(
        TreeConfig(
            depth=depth,
            fanout=fanout,
            redundancy=redundancy,
            server_link_bandwidth=1.0,
            fabric_link_bandwidth=4.0,
            access_capacity=8.0,
            aggregation_capacity=32.0,
            core_capacity=128.0,
            server_resources=(2.0,),
        )
    )


def architectures_64() -> dict[str, Topology]:
    """The four Figure 8(b) fabrics at comparable scale (64 servers)."""
    return {
        "tree": testbed_tree(),
        # k=6 fat-tree: 54 servers, the closest pod size to 64.
        "fat-tree": build_fattree(
            FatTreeConfig(
                k=6,
                server_resources=(2.0,),
                edge_capacity=8.0,
                aggregation_capacity=24.0,
                core_capacity=64.0,
            )
        ),
        "vl2": build_vl2(
            VL2Config(
                num_intermediate=4,
                num_aggregation=8,
                num_tor=16,
                servers_per_tor=4,
                server_resources=(2.0,),
                tor_capacity=8.0,
                aggregation_capacity=24.0,
                intermediate_capacity=64.0,
            )
        ),
        "bcube": build_bcube(
            BCubeConfig(
                n=8,
                k=1,
                server_resources=(2.0,),
                switch_capacity=16.0,
            )
        ),
    }


def testbed_workload(
    seed: int = 0,
    num_jobs: int = 22,
    interarrival: float = 0.5,
) -> list:
    """The Table-1 mix sized for the 64-host testbed.

    Map compute is fast relative to shuffle transfer (``map_rate=8``): the
    paper's premise is that shuffle, not map compute, dominates job time for
    the shuffle-heavy mix.
    """
    generator = WorkloadGenerator(
        seed=seed,
        input_size_range=(4.0, 12.0),
        split_size=1.0,
        reduces_per_maps=0.25,
        map_rate=8.0,
        reduce_rate=8.0,
    )
    return generator.make_workload(num_jobs, interarrival=interarrival)


def testbed_simulation_config(seed: int = 0) -> SimulationConfig:
    """Simulation knobs shared by the Figure 6/7 runs."""
    return SimulationConfig(
        container_demand=Resources(1.0, 0.0),
        map_slots_per_job=16,
        seed=seed,
    )
