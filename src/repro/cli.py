"""Command-line interface.

The subcommands cover the library's workflows without writing Python:

* ``repro topology`` — build a fabric and print its structure;
* ``repro workload`` — sample a Table-1 workload (optionally save a trace);
* ``repro simulate`` — run the discrete-event simulator with a scheduler;
* ``repro optimize`` — static placement comparison across schedulers;
* ``repro experiment`` — regenerate one of the paper's figures;
* ``repro sweep`` — run a sharded, resumable, deterministically-merged
  experiment grid (docs/experiments.md);
* ``repro chaos`` — randomized fault campaign with a survivability
  contract (docs/fault_model.md);
* ``repro online`` — open-loop arrivals through the admission plane, with
  per-tenant accounting under the overload contract (docs/workload.md);
* ``repro explain`` — query a decision-provenance log: reconstruct one
  task's decision chain or aggregate reason codes per scheduler
  (docs/observability.md).

Every command takes ``--seed`` (or a seed axis) so runs are reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import format_table
from .mapreduce import WorkloadGenerator, load_workload_file, save_workload_file
from .schedulers import make_scheduler
from .topology import (
    BCubeConfig,
    FatTreeConfig,
    Tier,
    TreeConfig,
    VL2Config,
    build_bcube,
    build_fattree,
    build_tree,
    build_vl2,
)

__all__ = ["main", "build_parser"]

SCHEDULER_CHOICES = (
    "capacity", "capacity-ecmp", "pna", "hit", "hit-online", "random", "rackpack",
)

#: Grid step used by bare ``--timeline`` (no ``--timeline-dt``).
DEFAULT_TIMELINE_DT = 0.05


def _build_topology(args: argparse.Namespace):
    if args.kind == "tree":
        return build_tree(TreeConfig(
            depth=args.depth, fanout=args.fanout, redundancy=args.redundancy,
            server_resources=(args.slots,),
        ))
    if args.kind == "fattree":
        return build_fattree(FatTreeConfig(k=args.k, server_resources=(args.slots,)))
    if args.kind == "vl2":
        return build_vl2(VL2Config(server_resources=(args.slots,)))
    if args.kind == "bcube":
        return build_bcube(BCubeConfig(n=args.n, k=args.levels,
                                       server_resources=(args.slots,)))
    raise ValueError(f"unknown topology kind {args.kind!r}")


# ------------------------------------------------------------------ commands
def cmd_topology(args: argparse.Namespace) -> int:
    topo = _build_topology(args)
    print(topo)
    by_tier: dict[Tier, int] = {}
    for w in topo.switch_ids:
        by_tier[topo.tier_of(w)] = by_tier.get(topo.tier_of(w), 0) + 1
    rows = [(t.label, n) for t, n in sorted(by_tier.items())]
    print(format_table(("tier", "switches"), rows))
    sample = topo.server_ids[: min(2, topo.num_servers)]
    if len(sample) == 2:
        a, b = sample
        print(f"sample path {a}->{b}: {topo.shortest_path(a, b)}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    generator = WorkloadGenerator(
        seed=args.seed,
        input_size_range=(args.min_size, args.max_size),
    )
    jobs = generator.make_workload(args.jobs, interarrival=args.interarrival)
    rows = [
        (j.job_id, j.name, j.shuffle_class.value, j.num_maps, j.num_reduces,
         round(j.input_size, 2), round(j.shuffle_volume, 2))
        for j in jobs
    ]
    print(format_table(
        ("id", "name", "class", "maps", "reduces", "input", "shuffle"),
        rows,
        title=f"workload (seed={args.seed})",
    ))
    if args.output:
        save_workload_file(args.output, jobs)
        print(f"\nsaved to {args.output}")
    return 0


def _load_or_generate_jobs(args: argparse.Namespace):
    if args.jobs_trace:
        return load_workload_file(args.jobs_trace)
    generator = WorkloadGenerator(
        seed=args.seed, input_size_range=(4.0, 12.0),
        map_rate=8.0, reduce_rate=8.0,
    )
    return generator.make_workload(args.jobs, interarrival=args.interarrival)


def _make_observability(args: argparse.Namespace):
    """Checker/tracer pair from the ``--check-invariants``/``--trace`` flags.

    Falls back to whatever is already installed process-wide (the
    ``REPRO_CHECK_INVARIANTS``/``REPRO_TRACE`` environment switches) so the
    command's ``observe()`` scope re-installs rather than shadows it.
    """
    from .obs import InvariantChecker, Tracer
    from .obs.runtime import STATE

    checker = (
        InvariantChecker(mode="collect")
        if getattr(args, "check_invariants", False)
        else STATE.checker
    )
    trace_path = getattr(args, "trace_file", None)
    if trace_path:
        tracer = Tracer.to_path(trace_path)
    else:
        tracer = STATE.tracer if STATE.tracer.enabled else None
    return checker, tracer


def _report_observability(checker, tracer) -> int:
    """Print the violations summary / close the trace; non-zero on breaches."""
    from .analysis import format_violations

    status = 0
    if checker is not None:
        print()
        print(format_violations(checker.violations))
        if checker.violations:
            status = 1
    if tracer is not None:
        tracer.close()
        print(f"trace written: {tracer.events_written} events")
        print(tracer.format_report())
    return status


def _timeline_dt(args: argparse.Namespace) -> float | None:
    """Resolve the simulated-time sampling step (None = recorder off).

    Precedence mirrors the ``REPRO_TRACE`` convention: explicit
    ``--timeline-dt`` wins, bare ``--timeline`` uses the default step, and
    the ``REPRO_TIMELINE_DT`` environment variable turns recording on for
    runs that didn't pass a flag.
    """
    import os

    if getattr(args, "timeline_dt", None) is not None:
        return float(args.timeline_dt)
    if getattr(args, "timeline", False):
        return DEFAULT_TIMELINE_DT
    env = os.environ.get("REPRO_TIMELINE_DT", "").strip()
    if env:
        return float(env)
    return None


def _make_fault_timeline(args: argparse.Namespace, topology):
    """Fault timeline from ``--faults`` (file) or ``--mtbf`` (sampled)."""
    from .faults import generate_timeline, load_fault_file

    if getattr(args, "faults", None):
        return load_fault_file(args.faults)
    if (
        getattr(args, "mtbf", None)
        or getattr(args, "switch_mtbf", None)
        or getattr(args, "slowdown_mtbf", None)
        or getattr(args, "link_mtbf", None)
        or getattr(args, "domain_mtbf", None)
    ):
        return generate_timeline(
            topology,
            seed=args.seed,
            horizon=args.fault_horizon,
            server_mtbf=args.mtbf,
            server_mttr=args.mttr,
            switch_mtbf=args.switch_mtbf,
            switch_mttr=args.switch_mttr,
            slowdown_mtbf=args.slowdown_mtbf,
            slowdown_mttr=args.slowdown_mttr,
            slowdown_factor=args.slowdown_factor,
            link_mtbf=getattr(args, "link_mtbf", None),
            link_mttr=getattr(args, "link_mttr", 1.0),
            domain_mtbf=getattr(args, "domain_mtbf", None),
            domain_mttr=getattr(args, "domain_mttr", 1.0),
            domain_kind=getattr(args, "domain_kind", "rack"),
            allow_partition=getattr(args, "allow_partition", False),
        )
    return ()


def _make_speculation(args: argparse.Namespace):
    """SpeculationConfig from the ``--speculation`` flag family (or None)."""
    if not getattr(args, "speculation", False):
        return None
    from .speculation import SpeculationConfig

    return SpeculationConfig(
        quota=args.spec_quota,
        threshold=args.spec_threshold,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    import dataclasses
    from pathlib import Path

    from .experiments import configs
    from .obs import ProvenanceConfig, observe
    from .simulator import MapReduceSimulator, save_trace_file

    jobs = _load_or_generate_jobs(args)
    topology = configs.testbed_tree()
    faults = _make_fault_timeline(args, topology)
    config = configs.testbed_simulation_config(seed=args.seed)
    if faults:
        config = dataclasses.replace(
            config,
            faults=tuple(faults),
            max_task_retries=args.max_task_retries,
        )
        print(f"fault timeline: {len(faults)} events")
    speculation = _make_speculation(args)
    if speculation is not None:
        config = dataclasses.replace(config, speculation=speculation)
    timeline_dt = _timeline_dt(args)
    if timeline_dt is not None:
        config = dataclasses.replace(
            config,
            timeline_dt=timeline_dt,
            timeline_max_samples=args.timeline_max_samples,
        )
    provenance_dir = None
    if args.provenance:
        provenance_dir = Path(args.provenance)
        provenance_dir.mkdir(parents=True, exist_ok=True)
    checker, tracer = _make_observability(args)
    rows = []
    critical_by_scheduler: dict[str, list] = {}
    report_sections: list[dict] = []
    # The tracer sink must end up flushed and closed on *every* exit path —
    # a failed run still yields a valid JSONL trace (close() is idempotent,
    # so the success path's _report_observability close is a no-op).
    try:
        with observe(checker=checker, tracer=tracer):
            for name in args.scheduler:
                run_config = config
                if provenance_dir is not None:
                    run_config = dataclasses.replace(
                        run_config,
                        provenance=ProvenanceConfig(
                            path=str(
                                provenance_dir / f"decisions.{name}.jsonl"
                            ),
                            ring_size=args.provenance_ring,
                        ),
                    )
                if args.timeline_spill and timeline_dt is not None:
                    run_config = dataclasses.replace(
                        run_config,
                        timeline_spill_path=(
                            f"{args.timeline_spill}.{name}.jsonl"
                        ),
                    )
                simulator = MapReduceSimulator(
                    topology,
                    make_scheduler(name, seed=args.seed),
                    list(jobs),
                    run_config,
                )
                metrics = simulator.run()
                if simulator.provenance is not None:
                    prov = simulator.provenance
                    print(
                        f"{name} decisions: {prov.emitted} emitted "
                        f"(ring keeps {len(prov.ring)}) -> {prov.path} "
                        f"[sha256 {prov.fingerprint()[:16]}]"
                    )
                counters: dict[str, int] = {}
                if simulator.faults is not None:
                    counters.update(simulator.faults.summary())
                    summary = ", ".join(
                        f"{k}={v}"
                        for k, v in simulator.faults.summary().items()
                    )
                    print(f"{name} faults: {summary}")
                if simulator.speculation is not None:
                    counters.update(simulator.speculation.summary())
                    summary = ", ".join(
                        f"{k}={v}"
                        for k, v in simulator.speculation.summary().items()
                    )
                    print(f"{name} speculation: {summary}")
                s = metrics.summary()
                rows.append((
                    name, s["mean_jct"], s["avg_route_hops"],
                    s["avg_shuffle_delay_us"], s["shuffle_cost"],
                ))
                if args.save_trace:
                    path = f"{args.save_trace}.{name}.jsonl"
                    save_trace_file(path, metrics)
                    print(f"trace saved: {path}")
                if args.critical_path or args.html_report:
                    from .analysis import attribute_run

                    critical_by_scheduler[name] = attribute_run(metrics)
                if args.export_trace:
                    from .obs import save_chrome_trace

                    path = f"{args.export_trace}.{name}.json"
                    save_chrome_trace(
                        path,
                        metrics,
                        simulator.timeline,
                        scheduler=name,
                        provenance=simulator.provenance,
                    )
                    print(f"perfetto trace saved: {path}")
                if args.html_report:
                    report_sections.append({
                        "scheduler": name,
                        "metrics": metrics,
                        "timeline": simulator.timeline,
                        "critical": critical_by_scheduler.get(name),
                        "counters": counters,
                    })
    finally:
        if tracer is not None:
            tracer.close()
    print(format_table(
        ("scheduler", "mean JCT", "route hops", "delay (us)", "shuffle cost"),
        rows,
        title=f"simulation: {len(jobs)} jobs on the 64-server testbed tree",
    ))
    if args.critical_path:
        from .analysis import format_critical_path

        print()
        print(format_critical_path(critical_by_scheduler, style="markdown"))
    if args.html_report:
        from .obs import save_html_report

        save_html_report(args.html_report, report_sections)
        print(f"html report saved: {args.html_report}")
    return _report_observability(checker, tracer)


def cmd_optimize(args: argparse.Namespace) -> int:
    from .experiments import build_static_workload, configs, run_static_placement
    from .obs import observe

    jobs = _load_or_generate_jobs(args)
    topology = configs.testbed_tree()
    workload = build_static_workload(topology, jobs, seed=args.seed)
    checker, tracer = _make_observability(args)
    rows = []
    try:
        with observe(checker=checker, tracer=tracer):
            for name in args.scheduler:
                result = run_static_placement(
                    workload, make_scheduler(name, seed=args.seed), seed=args.seed
                )
                rows.append((name, result.shuffle_cost, result.avg_route_hops))
    finally:
        if tracer is not None:
            tracer.close()
    print(format_table(
        ("scheduler", "shuffle cost (GB.T)", "avg route hops"),
        rows,
        title=f"static placement: {len(jobs)} jobs",
    ))
    return _report_observability(checker, tracer)


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        fig1_traffic_volume,
        fig3_case_study,
        fig8a_workload_classes,
        fig8b_architectures,
        fig9_bandwidth_sensitivity,
        fig10_job_numbers,
    )

    name = args.figure
    if name == "fig1":
        data = fig1_traffic_volume(seed=args.seed)
        rows = [(k, v["shuffle_volume"], v["remote_map_volume"], v["shuffle_share"])
                for k, v in data.items()]
        print(format_table(("class", "shuffle", "remote-map", "share"), rows))
    elif name == "fig3":
        r = fig3_case_study()
        print(format_table(("metric", "GB.T"), [
            ("capacity placement", r.baseline_cost),
            ("paper optimised", r.paper_optimised_cost),
            ("hit-scheduler", r.hit_cost),
        ]))
    elif name == "fig8a":
        data = fig8a_workload_classes(seed=args.seed)
        rows = [(k, v["hit_reduction"], v["pna_reduction"]) for k, v in data.items()]
        print(format_table(("class", "hit reduction", "pna reduction"), rows))
    elif name == "fig8b":
        data = fig8b_architectures(seed=args.seed)
        rows = [(k, v["capacity"], v["pna"], v["hit"]) for k, v in data.items()]
        print(format_table(("architecture", "capacity", "pna", "hit"), rows))
    elif name == "fig9":
        data = fig9_bandwidth_sensitivity(seed=args.seed, num_servers=64, num_jobs=3)
        rows = [(bw, v["hit_improvement"], v["pna_improvement"])
                for bw, v in sorted(data.items())]
        print(format_table(("bandwidth", "hit improvement", "pna improvement"), rows))
    elif name == "fig10":
        data = fig10_job_numbers(
            seed=args.seed, job_counts=(3, 6, 9), num_servers=64,
            input_size_range=(6.0, 10.0),
        )
        rows = [(n, v["hit_reduction"], v["pna_reduction"])
                for n, v in sorted(data.items())]
        print(format_table(("jobs", "hit reduction", "pna reduction"), rows))
    else:
        raise ValueError(f"unknown figure {name!r}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import format_sweep_table
    from .experiments.sweep import SweepSpec, merge_sweep, run_sweep
    from .obs import observe

    if args.force and args.resume:
        print("--force and --resume are contradictory", file=sys.stderr)
        return 2
    if args.grid:
        spec = SweepSpec.from_file(args.grid)
    else:
        spec = SweepSpec.from_dict({
            "seeds": args.seeds,
            "schedulers": args.schedulers,
            "topologies": args.topologies,
            "arms": args.arms,
            "workload": {
                "num_jobs": args.jobs,
                "interarrival": args.interarrival,
            },
        })
    checker, tracer = _make_observability(args)
    try:
        with observe(checker=checker, tracer=tracer):
            result = run_sweep(
                spec,
                cache_dir=args.cache_dir,
                workers=args.workers,
                force=args.force,
            )
    finally:
        if tracer is not None:
            tracer.close()
    print(
        f"sweep {spec.spec_hash()[:12]}: {len(result.cells)} cells — "
        f"{len(result.ran)} ran, {len(result.cached)} cached, "
        f"{len(result.failed)} failed "
        f"(workers={args.workers}, cache={args.cache_dir})"
    )
    if result.failed:
        by_hash = {c.config_hash(): c for c in result.cells}
        for cell_hash, error in sorted(result.failed.items()):
            label = by_hash[cell_hash].label()
            print(f"  FAILED {label} ({cell_hash[:12]}): {error}",
                  file=sys.stderr)
        _report_observability(checker, tracer)
        return 1
    report = merge_sweep(spec, args.cache_dir)
    if args.out:
        Path(args.out).write_text(report, encoding="utf-8")
        print(f"merged report written: {args.out}")
    import json as _json

    cells = _json.loads(report)["cells"]
    print(format_sweep_table(
        cells, title=f"sweep results ({len(cells)} cells)"
    ))
    return _report_observability(checker, tracer)


def cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .faults.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        trials=args.trials,
        seed=args.seed,
        schedulers=tuple(args.schedulers),
        topologies=tuple(args.topologies),
        jobs_per_trial=args.jobs,
        horizon=args.horizon,
        max_task_retries=args.max_task_retries,
        partition_every=args.partition_every,
        rerun=not args.no_rerun,
    )
    report = run_chaos(config)
    s = report.summary()
    print(
        f"chaos: {s['trials']} trials — {s['ok']} ok, "
        f"{s['failed_accounted']} accounted failures, "
        f"{s['violations']} contract violations"
    )
    for t in report.violations:
        print(
            f"  VIOLATION trial {t.trial} ({t.scheduler}/{t.topology}, "
            f"seed {t.seed}): {'; '.join(t.violations)}",
            file=sys.stderr,
        )
    if args.out:
        Path(args.out).write_text(report.canonical() + "\n", encoding="utf-8")
        print(f"chaos report written: {args.out}")
    return 1 if report.violations else 0


def cmd_online(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.report import canonical_json
    from .experiments.online import (
        ONLINE_TOPOLOGIES,
        build_arrival_plan,
        online_fingerprint,
    )
    from .faults.chaos import WatchdogSimulator
    from .obs import observe
    from .simulator import SimulationConfig
    from .workload import AdmissionConfig, generate_arrivals

    plan = build_arrival_plan(
        ONLINE_TOPOLOGIES[args.topology](),
        multiplier=args.arrival_rate,
        tenants=args.tenants,
        profile=args.profile,
        duration=args.duration,
    )
    admission = AdmissionConfig(
        policy=args.admission,
        queue_bound=(
            args.queue_bound if args.admission == "queue-bound" else None
        ),
    )
    config = SimulationConfig(
        map_slots_per_job=16, seed=args.seed, admission=admission
    )
    if args.provenance:
        import dataclasses

        from .obs import ProvenanceConfig

        provenance_dir = Path(args.provenance)
        provenance_dir.mkdir(parents=True, exist_ok=True)
        config = dataclasses.replace(
            config,
            provenance=ProvenanceConfig(
                path=str(
                    provenance_dir / f"decisions.{args.scheduler}.jsonl"
                ),
            ),
        )
    checker, tracer = _make_observability(args)
    try:
        with observe(checker=checker, tracer=tracer):
            jobs = generate_arrivals(plan, seed=args.seed)
            simulator = WatchdogSimulator(
                ONLINE_TOPOLOGIES[args.topology](),
                make_scheduler(args.scheduler, seed=args.seed),
                jobs,
                config,
                stall_limit=args.stall_limit,
            )
            metrics = simulator.run()
    finally:
        if tracer is not None:
            tracer.close()
    assert simulator.admission is not None
    if simulator.provenance is not None:
        prov = simulator.provenance
        print(
            f"decisions: {prov.emitted} emitted -> {prov.path} "
            f"[sha256 {prov.fingerprint()[:16]}]"
        )
    counters = {k: int(v) for k, v in simulator.admission.counters().items()}
    counters["online.completed"] = len(metrics.jobs)
    summary = {k: float(v) for k, v in metrics.online_summary().items()}
    rows = [
        (
            r["tenant"], r["weight"], r["submitted"], r["admitted"],
            r["started"], r["queued"], r["max_queue"], r["rejected"],
        )
        for r in simulator.admission.tenant_rows()
    ]
    print(format_table(
        ("tenant", "weight", "submitted", "admitted", "started",
         "queued", "max queue", "rejected"),
        rows,
        title=(
            f"online: {len(jobs)} arrivals over {args.duration} time units "
            f"({args.profile}, {args.arrival_rate}x saturation, "
            f"{args.admission} admission, {args.scheduler}/{args.topology})"
        ),
    ))
    print(
        f"\ncompleted={counters['online.completed']} "
        f"rejected={counters['admission.rejected']} "
        f"queued={counters['admission.queued']} "
        f"deferrals={counters['admission.deferrals']} | "
        f"mean_jct={summary['mean_jct']:.4f} "
        f"p99_jct={summary['p99_jct']:.4f} "
        f"mean_slowdown={summary['mean_slowdown']:.3f} "
        f"fairness={summary['tenant_fairness']:.3f}"
    )
    fingerprint = online_fingerprint(
        summary, counters, simulator.events_processed
    )
    print(f"fingerprint: {fingerprint[:16]}")
    if args.out:
        body = {
            "summary": summary,
            "counters": dict(sorted(counters.items())),
            "events": simulator.events_processed,
            "fingerprint": fingerprint,
        }
        Path(args.out).write_text(
            canonical_json(body) + "\n", encoding="utf-8"
        )
        print(f"online report written: {args.out}")
    return _report_observability(checker, tracer)


def _decision_logs(args: argparse.Namespace) -> list:
    """Resolve ``--run`` into decision-log paths (sorted, deterministic)."""
    from pathlib import Path

    run = Path(args.run)
    if run.is_file():
        return [run]
    if run.is_dir():
        paths = sorted(run.glob("decisions.*.jsonl"))
        if args.scheduler:
            paths = [
                p for p in paths
                if p.name == f"decisions.{args.scheduler}.jsonl"
            ]
        return paths
    return []


def cmd_explain(args: argparse.Namespace) -> int:
    from .obs import (
        explain_task,
        format_record,
        load_decisions,
        summarize_decisions,
    )

    paths = _decision_logs(args)
    if not paths:
        print(f"no decision logs found under {args.run!r} "
              "(expected decisions.<scheduler>.jsonl)", file=sys.stderr)
        return 2
    records = []
    for path in paths:
        records.extend(load_decisions(path))
    if args.summary:
        rows = [
            (scheduler, key, count)
            for scheduler, buckets in summarize_decisions(records).items()
            for key, count in buckets.items()
        ]
        print(format_table(
            ("scheduler", "decision", "count"),
            rows,
            title=f"decision summary ({len(records)} records, "
                  f"{len(paths)} log(s))",
        ))
        return 0
    if args.job is None:
        print("explain needs --job (or --summary)", file=sys.stderr)
        return 2
    target = f"job {args.job}" + (f" task {args.task}" if args.task else "")
    # Sequence numbers are per-scheduler streams, so chains from a
    # multi-scheduler run directory must not interleave.
    by_scheduler: dict[str, list] = {}
    for record in records:
        by_scheduler.setdefault(record.scheduler, []).append(record)
    found = False
    for scheduler in sorted(by_scheduler):
        chain = explain_task(by_scheduler[scheduler], args.job, args.task)
        if not chain:
            continue
        found = True
        print(
            f"decision chain for {target} "
            f"({scheduler}, {len(chain)} records):"
        )
        for record in chain:
            print(f"  {format_record(record)}")
    if not found:
        print(f"no decisions recorded for {target}")
        return 1
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hit-Scheduler reproduction toolkit (ICPP 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="build and describe a fabric")
    p.add_argument("kind", choices=("tree", "fattree", "vl2", "bcube"))
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--fanout", type=int, default=4)
    p.add_argument("--redundancy", type=int, default=2)
    p.add_argument("--k", type=int, default=4, help="fat-tree arity")
    p.add_argument("--n", type=int, default=4, help="BCube ports per switch")
    p.add_argument("--levels", type=int, default=1, help="BCube level count k")
    p.add_argument("--slots", type=float, default=2.0, help="slots per server")
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("workload", help="sample a Table-1 workload")
    p.add_argument("--jobs", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-size", type=float, default=4.0)
    p.add_argument("--max-size", type=float, default=12.0)
    p.add_argument("--interarrival", type=float, default=0.0)
    p.add_argument("--output", help="save as a JSON-lines trace file")
    p.set_defaults(func=cmd_workload)

    for cmd, func, help_text in (
        ("simulate", cmd_simulate, "run the discrete-event simulator"),
        ("optimize", cmd_optimize, "static placement comparison"),
    ):
        p = sub.add_parser(cmd, help=help_text)
        p.add_argument(
            "--scheduler", nargs="+", choices=SCHEDULER_CHOICES,
            default=["capacity", "pna", "hit"],
        )
        p.add_argument("--jobs", type=int, default=8)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--interarrival", type=float, default=0.5)
        p.add_argument(
            "--jobs-trace", dest="jobs_trace",
            help="load jobs from a workload trace file instead",
        )
        p.add_argument(
            "--check-invariants", action="store_true",
            help="verify the paper's runtime invariants and print a "
                 "violations summary (non-zero exit on breaches)",
        )
        p.add_argument(
            "--trace", dest="trace_file", metavar="FILE",
            help="write counters/timers/spans as JSON lines to FILE",
        )
        if cmd == "simulate":
            p.add_argument("--save-trace", help="save per-scheduler run traces")
            telemetry_group = p.add_argument_group(
                "simulated-time telemetry",
                "opt-in, non-perturbing gauge timelines and run exports "
                "(docs/observability.md)",
            )
            telemetry_group.add_argument(
                "--timeline", action="store_true",
                help="record gauge timelines on the simulated clock "
                     f"(grid step {DEFAULT_TIMELINE_DT}; the "
                     "REPRO_TIMELINE_DT environment variable also enables "
                     "this)",
            )
            telemetry_group.add_argument(
                "--timeline-dt", type=float, default=None, metavar="DT",
                help="sampling grid step in simulated time (implies "
                     "--timeline)",
            )
            telemetry_group.add_argument(
                "--timeline-max-samples", type=int, default=None, metavar="N",
                help="bound the in-memory timeline buffer to N samples; "
                     "overflow spills to --timeline-spill (or is dropped)",
            )
            telemetry_group.add_argument(
                "--timeline-spill", metavar="PREFIX",
                help="stream overflowing timeline samples to "
                     "PREFIX.<scheduler>.jsonl (needs --timeline-max-samples)",
            )
            provenance_group = p.add_argument_group(
                "decision provenance",
                "opt-in, non-perturbing decision-audit records; query with "
                "`repro explain` (docs/observability.md)",
            )
            provenance_group.add_argument(
                "--provenance", metavar="DIR",
                help="record one DecisionRecord per runtime choice to "
                     "DIR/decisions.<scheduler>.jsonl",
            )
            provenance_group.add_argument(
                "--provenance-ring", type=int, default=4096, metavar="N",
                help="in-memory decision ring size (default 4096; the "
                     "JSONL log always has every record)",
            )
            telemetry_group.add_argument(
                "--export-trace", metavar="PREFIX",
                help="write PREFIX.<scheduler>.json Chrome trace-event "
                     "files (open in https://ui.perfetto.dev)",
            )
            telemetry_group.add_argument(
                "--html-report", metavar="FILE",
                help="write a self-contained HTML telemetry report "
                     "covering every scheduler in this run",
            )
            telemetry_group.add_argument(
                "--critical-path", action="store_true",
                help="print the per-scheduler JCT critical-path "
                     "attribution table (markdown)",
            )
            fault_group = p.add_argument_group(
                "fault injection",
                "deterministic failures replayed identically for every "
                "scheduler (docs/fault_model.md)",
            )
            fault_group.add_argument(
                "--faults", metavar="FILE",
                help="JSON-lines fault timeline (see repro.faults.spec)",
            )
            fault_group.add_argument(
                "--mtbf", type=float, default=None,
                help="sample server failures with this mean time between "
                     "failures (exponential, seeded by --seed)",
            )
            fault_group.add_argument(
                "--mttr", type=float, default=1.0,
                help="server mean time to recovery (default 1.0)",
            )
            fault_group.add_argument(
                "--switch-mtbf", type=float, default=None,
                help="sample switch failures with this MTBF",
            )
            fault_group.add_argument(
                "--switch-mttr", type=float, default=1.0,
                help="switch mean time to recovery (default 1.0)",
            )
            fault_group.add_argument(
                "--slowdown-mtbf", type=float, default=None,
                help="sample transient server slowdowns (stragglers) with "
                     "this mean time between episodes",
            )
            fault_group.add_argument(
                "--slowdown-mttr", type=float, default=0.5,
                help="mean duration of a sampled slowdown episode "
                     "(default 0.5)",
            )
            fault_group.add_argument(
                "--slowdown-factor", type=float, default=4.0,
                help="compute-speed divisor during a sampled slowdown "
                     "(default 4.0)",
            )
            fault_group.add_argument(
                "--link-mtbf", type=float, default=None,
                help="sample physical-link failures with this MTBF",
            )
            fault_group.add_argument(
                "--link-mttr", type=float, default=1.0,
                help="link mean time to recovery (default 1.0; 0 = "
                     "instant repair)",
            )
            fault_group.add_argument(
                "--domain-mtbf", type=float, default=None,
                help="sample correlated failure-domain outages with this "
                     "MTBF (whole racks/pods/power feeds at once)",
            )
            fault_group.add_argument(
                "--domain-mttr", type=float, default=1.0,
                help="failure-domain mean time to recovery (default 1.0)",
            )
            fault_group.add_argument(
                "--domain-kind", choices=("rack", "pod", "power"),
                default="rack",
                help="which failure domains --domain-mtbf samples over "
                     "(default rack)",
            )
            fault_group.add_argument(
                "--allow-partition", action="store_true",
                help="let sampled outages partition the fabric (default: "
                     "partitioning episodes are dropped)",
            )
            fault_group.add_argument(
                "--fault-horizon", type=float, default=20.0,
                help="stop sampling new failures after this time",
            )
            fault_group.add_argument(
                "--max-task-retries", type=int, default=3,
                help="failure-induced re-executions allowed per task",
            )
            spec_group = p.add_argument_group(
                "speculative execution",
                "LATE-style straggler mitigation with topology-aware "
                "backup placement (docs/fault_model.md)",
            )
            spec_group.add_argument(
                "--speculation", action="store_true",
                help="enable speculative backup attempts for straggling "
                     "maps (no-op on fault-free runs)",
            )
            spec_group.add_argument(
                "--spec-quota", type=float, default=0.2,
                help="concurrent backups allowed per job, as a fraction "
                     "of its map count (default 0.2)",
            )
            spec_group.add_argument(
                "--spec-threshold", type=float, default=0.7,
                help="an attempt is a straggler when its normalised "
                     "progress rate falls below this fraction of its "
                     "job's mean (default 0.7)",
            )
        p.set_defaults(func=func)

    p = sub.add_parser("experiment", help="regenerate a paper figure")
    p.add_argument(
        "figure", choices=("fig1", "fig3", "fig8a", "fig8b", "fig9", "fig10")
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "sweep",
        help="sharded, resumable experiment grid with deterministic merge",
        description="Enumerate a (seeds x schedulers x topologies x arms) "
                    "grid, shard cells across worker processes, cache each "
                    "cell keyed by its config hash, and merge cached cells "
                    "into a byte-stable report (docs/experiments.md).",
    )
    p.add_argument(
        "--grid", metavar="FILE",
        help="JSON grid spec file (overrides the inline axis flags)",
    )
    p.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="seed axis (default: 0)",
    )
    p.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_CHOICES,
        default=["capacity", "pna", "hit"],
        help="scheduler axis",
    )
    p.add_argument(
        "--topologies", nargs="+",
        choices=("testbed", "large64", "large512", "mini"),
        default=["testbed"],
        help="topology axis (registry names; dict form only via --grid)",
    )
    p.add_argument(
        "--arms", nargs="+",
        choices=("baseline", "chaos", "faults", "faults+speculation",
                 "online", "static", "telemetry"),
        default=["baseline"],
        help="fault/speculation arm axis (default: baseline)",
    )
    p.add_argument("--jobs", type=int, default=8,
                   help="jobs per workload (inline grids)")
    p.add_argument("--interarrival", type=float, default=0.5)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard cells across (1 = in-process); "
             "the merged output is byte-identical for any value",
    )
    p.add_argument(
        "--cache-dir", default="sweep-cache", metavar="DIR",
        help="per-cell artifact cache (default: ./sweep-cache)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep by skipping cached cells — this "
             "is also the default behaviour; the flag exists to make "
             "intent explicit in scripts (works on an empty cache too)",
    )
    p.add_argument(
        "--force", action="store_true",
        help="recompute every cell, ignoring cached artifacts",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the merged canonical-JSON report to FILE",
    )
    p.add_argument(
        "--check-invariants", action="store_true",
        help="verify runtime invariants during cells run in-process "
             "(workers=1) and print a violations summary",
    )
    p.add_argument(
        "--trace", dest="trace_file", metavar="FILE",
        help="write per-cell timers and the sweep summary as JSON lines",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="randomized fault campaign with a survivability contract",
        description="Drive seeded randomized fault timelines (correlated "
                    "failure domains, switch/server crashes, link failures "
                    "and degradations, optional partitions) through the "
                    "engine across a schedulers x topologies grid, and "
                    "machine-check the survivability contract on every "
                    "trial (docs/fault_model.md). Non-zero exit on any "
                    "contract violation.",
    )
    p.add_argument("--trials", type=int, default=50,
                   help="seeded trials across the grid (default 50)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; trial i uses seed+i")
    p.add_argument(
        "--schedulers", nargs="+", choices=SCHEDULER_CHOICES,
        default=["capacity", "hit"],
    )
    p.add_argument(
        "--topologies", nargs="+", choices=("small", "deep"),
        default=["small", "deep"],
        help="chaos fabric registry names (default: both)",
    )
    p.add_argument("--jobs", type=int, default=3,
                   help="jobs per trial (default 3)")
    p.add_argument("--horizon", type=float, default=4.0,
                   help="fault-sampling horizon per trial (default 4.0)")
    p.add_argument("--max-task-retries", type=int, default=8,
                   help="retry budget per task (default 8)")
    p.add_argument(
        "--partition-every", type=int, default=4,
        help="every Nth trial may partition the fabric (0 = never)",
    )
    p.add_argument(
        "--no-rerun", action="store_true",
        help="skip the per-trial byte-identity rerun (faster, weaker)",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the canonical-JSON chaos report to FILE",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "online",
        help="open-loop arrivals through the admission plane",
        description="Sample a seeded multi-tenant arrival stream at a "
                    "multiple of the fabric's estimated saturation rate, "
                    "run it through per-tenant admission queues and a "
                    "scheduler, and print per-tenant accounting under the "
                    "overload contract (docs/workload.md). The --out report "
                    "is canonical JSON — byte-identical across reruns of "
                    "the same seed.",
    )
    p.add_argument(
        "--arrival-rate", type=float, default=1.5,
        help="aggregate arrival rate as a multiple of the estimated "
             "saturation rate (default 1.5 = overload)",
    )
    p.add_argument("--tenants", type=int, default=2,
                   help="tenants sharing the cluster (default 2)")
    p.add_argument(
        "--profile", choices=("poisson", "diurnal", "bursty"),
        default="poisson",
        help="arrival process shape (default poisson)",
    )
    p.add_argument(
        "--admission",
        choices=("admit-all", "queue-bound", "load-threshold",
                 "token-bucket"),
        default="queue-bound",
        help="admission policy (default queue-bound)",
    )
    p.add_argument(
        "--queue-bound", type=int, default=8,
        help="max queued jobs per tenant under queue-bound (default 8)",
    )
    p.add_argument("--duration", type=float, default=3.0,
                   help="submission window in sim time (default 3.0)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scheduler", choices=SCHEDULER_CHOICES, default="hit",
    )
    p.add_argument(
        "--topology", choices=("small", "deep"), default="small",
        help="online fabric registry name (default small)",
    )
    p.add_argument(
        "--stall-limit", type=int, default=50_000,
        help="consecutive same-timestamp events before the liveness "
             "watchdog declares a stall (default 50000)",
    )
    p.add_argument(
        "--check-invariants", action="store_true",
        help="verify runtime invariants (incl. online accounting) and "
             "print a violations summary (non-zero exit on breaches)",
    )
    p.add_argument(
        "--trace", dest="trace_file", metavar="FILE",
        help="write counters/timers/spans as JSON lines to FILE",
    )
    p.add_argument(
        "--provenance", metavar="DIR",
        help="record decision provenance to DIR/decisions.<scheduler>.jsonl "
             "(non-perturbing; query with `repro explain`)",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the canonical-JSON online report to FILE",
    )
    p.set_defaults(func=cmd_online)

    p = sub.add_parser(
        "explain",
        help="query a decision-provenance log",
        description="Read the DIR/decisions.<scheduler>.jsonl logs a "
                    "--provenance run wrote and either reconstruct the "
                    "decision chain of one job/task (--job/--task) or "
                    "aggregate reason codes per scheduler (--summary). "
                    "Output is deterministic: records print in sequence "
                    "order with sorted detail keys.",
    )
    p.add_argument(
        "--run", required=True, metavar="PATH",
        help="a decisions .jsonl file, or a directory containing "
             "decisions.*.jsonl logs",
    )
    p.add_argument(
        "--scheduler", metavar="NAME",
        help="restrict to one scheduler's log (directory runs only)",
    )
    p.add_argument("--job", type=int, default=None, help="job id to explain")
    p.add_argument(
        "--task", metavar="TASK",
        help="task identity (m3 / r1); flow records match both endpoints",
    )
    p.add_argument(
        "--summary", action="store_true",
        help="print aggregated kind:reason counts per scheduler instead "
             "of a chain",
    )
    p.set_defaults(func=cmd_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
