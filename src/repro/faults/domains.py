"""Correlated failure domains derived from the fabric topology.

A *failure domain* is a set of elements that plausibly fail together:

* ``rack`` — the servers of one rack plus the access switch(es) wired to
  them (top-of-rack power strip / PDU failure);
* ``pod`` — racks that share aggregation switches, plus those aggregation
  switches (a pod-level power or cooling event);
* ``power`` — pairs of adjacent racks (servers + access switches) modelling
  a shared power feed that spans two racks.

Domains are derived purely from link adjacency, so they work on any
:class:`~repro.topology.base.Topology` (trees, fat-trees, VL2, …) without
builder cooperation.  Derivation is deterministic: domains are indexed in
ascending order of their smallest server id, and each domain lists its
servers and switches sorted ascending — which is what lets a single
``domain-fail`` :class:`~repro.faults.spec.FaultSpec` expand into a
byte-stable sequence of per-element events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..topology.base import Tier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology

__all__ = ["DOMAIN_KINDS", "FailureDomain", "domains_of"]

#: Valid ``FaultSpec.domain`` values / ``domains_of`` kinds.
DOMAIN_KINDS = ("rack", "pod", "power")


@dataclass(frozen=True)
class FailureDomain:
    """One correlated failure domain: a named set of servers + switches."""

    kind: str
    index: int
    name: str
    servers: tuple[int, ...]
    switches: tuple[int, ...]

    @property
    def elements(self) -> tuple[int, ...]:
        """All member node ids: servers first, then switches, each sorted."""
        return self.servers + self.switches


def _racks(topology: "Topology") -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Group servers by their (frozen) set of access-switch neighbours."""
    groups: dict[frozenset[int], list[int]] = {}
    for sid in topology.server_ids:
        access = frozenset(
            n for n in topology.neighbors(sid) if topology.is_switch(n)
        )
        groups.setdefault(access, []).append(sid)
    ordered = sorted(groups.items(), key=lambda kv: min(kv[1]))
    return [
        (tuple(sorted(servers)), tuple(sorted(access)))
        for access, servers in ordered
    ]


def _aggregation_neighbors(topology: "Topology", access: tuple[int, ...]) -> set[int]:
    agg: set[int] = set()
    for wid in access:
        for n in topology.neighbors(wid):
            if topology.is_switch(n) and topology.tier_of(n) is Tier.AGGREGATION:
                agg.add(n)
    return agg


def domains_of(topology: "Topology", kind: str) -> tuple[FailureDomain, ...]:
    """Derive the failure domains of ``kind`` for ``topology``.

    Raises :class:`ValueError` for unknown kinds.  The result is a tuple
    indexed exactly as ``FaultSpec.target`` addresses domains.
    """
    if kind not in DOMAIN_KINDS:
        raise ValueError(
            f"unknown failure-domain kind {kind!r} (expected one of {DOMAIN_KINDS})"
        )
    racks = _racks(topology)

    if kind == "rack":
        return tuple(
            FailureDomain("rack", i, f"rack{i}", servers, access)
            for i, (servers, access) in enumerate(racks)
        )

    if kind == "power":
        domains = []
        for i in range(0, len(racks), 2):
            pair = racks[i : i + 2]
            servers = tuple(sorted(s for srv, _ in pair for s in srv))
            switches = tuple(sorted(w for _, acc in pair for w in acc))
            domains.append(
                FailureDomain("power", len(domains), f"power{len(domains)}",
                              servers, switches)
            )
        return tuple(domains)

    # kind == "pod": union-find racks that share aggregation switches; a rack
    # with no aggregation tier above it (depth-2 trees) is its own pod.
    agg_sets = [_aggregation_neighbors(topology, access) for _, access in racks]
    parent = list(range(len(racks)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner_of_agg: dict[int, int] = {}
    for i, agg in enumerate(agg_sets):
        for wid in sorted(agg):
            if wid in owner_of_agg:
                ra, rb = find(owner_of_agg[wid]), find(i)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
            else:
                owner_of_agg[wid] = i
    members: dict[int, list[int]] = {}
    for i in range(len(racks)):
        members.setdefault(find(i), []).append(i)
    pods = sorted(members.values(), key=lambda racks_idx: min(racks_idx))
    domains = []
    for idx, rack_indices in enumerate(pods):
        servers = tuple(sorted(s for i in rack_indices for s in racks[i][0]))
        switches = tuple(
            sorted(
                {w for i in rack_indices for w in racks[i][1]}
                | {w for i in rack_indices for w in agg_sets[i]}
            )
        )
        domains.append(FailureDomain("pod", idx, f"pod{idx}", servers, switches))
    return tuple(domains)
