"""Declarative fault timelines.

A fault timeline is an ordered tuple of :class:`FaultSpec` records — "at
time *t*, element *x* fails / recovers / slows down".  Timelines come from
three sources, all deterministic:

* hand-written specs (tests, the CI smoke run, scripted scenarios);
* JSON-lines fault files (:func:`load_fault_file` / :func:`save_fault_file`),
  the CLI's ``--faults FILE``;
* seeded exponential MTBF/MTTR sampling (:func:`generate_timeline`), the
  CLI's ``--mtbf``/``--mttr`` — the classic memoryless machine-availability
  model used throughout the MapReduce-under-failure literature.

The same timeline can be replayed against every scheduler, which is what
makes degradation comparisons (``repro.experiments.faults``) apples-to-
apples: each baseline sees byte-identical failures.

Beyond whole-server/whole-switch faults, the taxonomy covers:

* **link faults** (``link-fail``/``link-recover``/``link-degrade``) — a
  single physical link dies or runs at a fraction of nominal bandwidth
  (fail-slow NICs, oversubscribed uplinks), addressed by its two endpoint
  node ids (``target``/``target2``);
* **correlated failure domains** (``domain-fail``/``domain-recover``) — a
  whole rack/pod/power domain (:mod:`repro.faults.domains`) fails at once;
  the injector expands one domain spec deterministically into per-element
  server/switch events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .domains import DOMAIN_KINDS, domains_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology

__all__ = [
    "FaultKind",
    "FaultSpec",
    "generate_timeline",
    "load_fault_file",
    "save_fault_file",
    "validate_timeline",
]


class FaultKind(Enum):
    """The fault taxonomy (see ``docs/fault_model.md``)."""

    SERVER_FAIL = "server-fail"
    SERVER_RECOVER = "server-recover"
    SWITCH_FAIL = "switch-fail"
    SWITCH_RECOVER = "switch-recover"
    #: Straggler injection: the target server's compute speed is divided by
    #: ``factor`` for tasks launched after the event (factor 1.0 restores).
    TASK_SLOWDOWN = "task-slowdown"
    #: The physical link ``target``—``target2`` dies outright (carries no
    #: traffic until the matching ``link-recover``).
    LINK_FAIL = "link-fail"
    LINK_RECOVER = "link-recover"
    #: Fail-slow link: capacity scales to ``factor`` × nominal (0.0 = dead,
    #: 1.0 restores nominal bandwidth).
    LINK_DEGRADE = "link-degrade"
    #: Correlated outage of failure domain ``domain``/``target`` (a rack,
    #: pod or power domain index from :func:`repro.faults.domains.domains_of`).
    DOMAIN_FAIL = "domain-fail"
    DOMAIN_RECOVER = "domain-recover"


#: Kinds whose target must be a server node.
_SERVER_KINDS = frozenset(
    {FaultKind.SERVER_FAIL, FaultKind.SERVER_RECOVER, FaultKind.TASK_SLOWDOWN}
)
#: Kinds whose target must be a switch node.
_SWITCH_KINDS = frozenset({FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER})
#: Kinds whose (target, target2) must name a physical link.
_LINK_KINDS = frozenset(
    {FaultKind.LINK_FAIL, FaultKind.LINK_RECOVER, FaultKind.LINK_DEGRADE}
)
#: Kinds whose (domain, target) must name a failure domain.
_DOMAIN_FAULT_KINDS = frozenset({FaultKind.DOMAIN_FAIL, FaultKind.DOMAIN_RECOVER})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *target* experiences *kind* at *time*.

    ``factor`` matters for :attr:`FaultKind.TASK_SLOWDOWN` (a factor of 2.0
    halves the server's compute speed; 1.0 restores nominal speed) and for
    :attr:`FaultKind.LINK_DEGRADE` (the link runs at ``factor`` × nominal
    capacity, so 0.0 kills it and 1.0 restores it).

    ``duration`` (slowdown-only) makes the degradation *timed*: a
    positive value schedules the matching restore (factor 1.0) at
    ``time + duration`` automatically, so transient stragglers — the common
    case in production traces — need one spec instead of a hand-paired
    slowdown/restore.  Zero means the slowdown holds until another spec
    changes the server's speed.

    ``target2`` is the far endpoint for link kinds (unused otherwise), and
    ``domain`` names the failure-domain kind (``rack``/``pod``/``power``)
    for domain kinds, in which case ``target`` is the domain *index*.
    """

    time: float
    kind: FaultKind
    target: int
    factor: float = 1.0
    duration: float = 0.0
    target2: int = -1
    domain: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.target < 0:
            raise ValueError(f"fault target must be a node id, got {self.target}")
        if self.kind is FaultKind.LINK_DEGRADE:
            if not 0.0 <= self.factor <= 1.0:
                raise ValueError(
                    f"link degrade factor must be in [0, 1], got {self.factor}"
                )
        elif self.factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {self.factor}")
        if self.duration < 0:
            raise ValueError(
                f"slowdown duration must be non-negative, got {self.duration}"
            )
        if self.duration > 0 and self.kind is not FaultKind.TASK_SLOWDOWN:
            raise ValueError(
                f"duration only applies to task-slowdown specs, "
                f"got {self.kind.value}"
            )
        if self.kind in _LINK_KINDS:
            if self.target2 < 0:
                raise ValueError(
                    f"{self.kind.value} needs target2 (the far link endpoint)"
                )
        elif self.target2 != -1:
            raise ValueError(
                f"target2 only applies to link specs, got {self.kind.value}"
            )
        if self.kind in _DOMAIN_FAULT_KINDS:
            if self.domain not in DOMAIN_KINDS:
                raise ValueError(
                    f"{self.kind.value} needs domain in {DOMAIN_KINDS}, "
                    f"got {self.domain!r}"
                )
        elif self.domain:
            raise ValueError(
                f"domain only applies to domain specs, got {self.kind.value}"
            )

    # ------------------------------------------------------------- serialise
    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
        }
        if self.kind is FaultKind.TASK_SLOWDOWN:
            record["factor"] = self.factor
            if self.duration > 0:
                record["duration"] = self.duration
        if self.kind in _LINK_KINDS:
            record["target2"] = self.target2
            if self.kind is FaultKind.LINK_DEGRADE:
                record["factor"] = self.factor
        if self.kind in _DOMAIN_FAULT_KINDS:
            record["domain"] = self.domain
        return record

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "FaultSpec":
        try:
            kind = FaultKind(str(record["kind"]))
            return cls(
                time=float(record["time"]),  # type: ignore[arg-type]
                kind=kind,
                target=int(record["target"]),  # type: ignore[arg-type]
                factor=float(record.get("factor", 1.0)),  # type: ignore[arg-type]
                duration=float(record.get("duration", 0.0)),  # type: ignore[arg-type]
                target2=int(record.get("target2", -1)),  # type: ignore[arg-type]
                domain=str(record.get("domain", "")),
            )
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed fault record {record!r}: {exc}") from exc


def validate_timeline(
    topology: "Topology", specs: Iterable[FaultSpec]
) -> tuple[FaultSpec, ...]:
    """Check every spec against the fabric and return the sorted timeline.

    Targets must exist and be of the right node class (server kinds target
    servers, switch kinds switches, link kinds physical links, domain kinds
    valid domain indices).  Sorting is by (time, original order) so
    same-instant faults keep their authored order; the event queue's kind
    priority then decides recovery-vs-failure ordering.
    """
    domain_counts: dict[str, int] = {}
    out = []
    for spec in specs:
        if spec.kind in _SERVER_KINDS and not topology.is_server(spec.target):
            raise ValueError(
                f"{spec.kind.value} targets node {spec.target}, "
                f"which is not a server"
            )
        if spec.kind in _SWITCH_KINDS and not topology.is_switch(spec.target):
            raise ValueError(
                f"{spec.kind.value} targets node {spec.target}, "
                f"which is not a switch"
            )
        if spec.kind in _LINK_KINDS and not topology.has_link(
            spec.target, spec.target2
        ):
            raise ValueError(
                f"{spec.kind.value} targets ({spec.target}, {spec.target2}), "
                f"which is not a physical link"
            )
        if spec.kind in _DOMAIN_FAULT_KINDS:
            if spec.domain not in domain_counts:
                domain_counts[spec.domain] = len(domains_of(topology, spec.domain))
            if spec.target >= domain_counts[spec.domain]:
                raise ValueError(
                    f"{spec.kind.value} targets {spec.domain} domain "
                    f"{spec.target}, but the fabric only has "
                    f"{domain_counts[spec.domain]} {spec.domain} domains"
                )
        out.append(spec)
    out.sort(key=lambda s: s.time)
    return tuple(out)


# --------------------------------------------------------------- fault files
def save_fault_file(path: str, specs: Sequence[FaultSpec]) -> None:
    """Write a timeline as JSON lines (one fault per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for spec in specs:
            handle.write(json.dumps(spec.as_dict(), sort_keys=True) + "\n")


def load_fault_file(path: str) -> tuple[FaultSpec, ...]:
    """Read a JSON-lines fault file written by :func:`save_fault_file`."""
    specs: list[FaultSpec] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            specs.append(FaultSpec.from_dict(record))
    specs.sort(key=lambda s: s.time)
    return tuple(specs)


# ----------------------------------------------------- partition safety pass
def _canonical(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


@dataclass
class _Outage:
    """One fail→recover episode of a fabric element (or element set)."""

    start: float
    end: float
    servers: frozenset[int]
    switches: frozenset[int]
    links: frozenset[tuple[int, int]]
    droppable: bool
    specs: tuple[FaultSpec, ...]


def _live_servers_connected(
    topology: "Topology",
    adjacency: dict[int, tuple[int, ...]],
    down_servers: dict[int, int],
    down_switches: dict[int, int],
    down_links: dict[tuple[int, int], int],
) -> bool:
    """True when every currently-live server can reach every other one."""
    live = [s for s in topology.server_ids if down_servers.get(s, 0) == 0]
    if len(live) <= 1:
        return True
    seen = {live[0]}
    stack = [live[0]]
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            if v in seen:
                continue
            if down_switches.get(v, 0) > 0:
                continue
            if down_links.get(_canonical(u, v), 0) > 0:
                continue
            if topology.is_server(v) and down_servers.get(v, 0) > 0:
                continue
            seen.add(v)
            stack.append(v)
    return all(s in seen for s in live)


def _prune_partitioning_outages(
    topology: "Topology", outages: list[_Outage], allow_partition: bool
) -> list[_Outage]:
    """Drop droppable outages so live servers stay mutually reachable at
    every instant of the timeline.

    Boundaries are replayed in time order (recoveries before failures at
    ties, matching the event queue's kind priority) and the live-server
    connectivity of the fabric minus all currently-down elements is
    BFS-checked after *every* boundary — onsets AND recoveries.  Checking
    recoveries matters: a server (or whole domain) coming back while some
    other outage still holds its last uplink down materialises a partition
    at the recovery instant, not at either onset.

    When a boundary partitions the fabric, the guard drops — whole, as if
    its elements had stayed up — an outage open at that instant: preferably
    the latest-starting droppable outage whose removal alone restores
    connectivity, else the latest-starting droppable one.  The replay then
    restarts, because removing an outage shifts which later boundaries are
    reachable.  Non-droppable outages (plain server crashes, which cannot
    sever paths between live servers) only contribute down-state.  The loop
    terminates: every iteration permanently drops one outage.
    """
    if allow_partition:
        return outages
    adjacency = {
        node: topology.neighbors(node)
        for node in (*topology.server_ids, *topology.switch_ids)
    }
    dropped: set[int] = set()

    def replay() -> int | None:
        """Replay kept outages; return the index to drop, or None if the
        whole timeline keeps live servers connected."""
        boundaries = sorted(
            (
                boundary
                for idx, outage in enumerate(outages)
                if idx not in dropped
                for boundary in (
                    (outage.end, 0, idx),
                    (outage.start, 1, idx),
                )
            ),
            key=lambda b: (b[0], b[1]),
        )
        down_servers: dict[int, int] = {}
        down_switches: dict[int, int] = {}
        down_links: dict[tuple[int, int], int] = {}
        open_now: set[int] = set()

        def apply(outage: _Outage, delta: int) -> None:
            for sid in outage.servers:
                down_servers[sid] = down_servers.get(sid, 0) + delta
            for wid in outage.switches:
                down_switches[wid] = down_switches.get(wid, 0) + delta
            for key in outage.links:
                down_links[key] = down_links.get(key, 0) + delta

        def connected() -> bool:
            return _live_servers_connected(
                topology, adjacency, down_servers, down_switches, down_links
            )

        for _, is_start, idx in boundaries:
            outage = outages[idx]
            if is_start:
                apply(outage, +1)
                open_now.add(idx)
            else:
                apply(outage, -1)
                open_now.discard(idx)
            if connected():
                continue
            # Latest-start first: the most recent cause is the natural
            # culprit, and index breaks exact-tie starts deterministically.
            candidates = sorted(
                (i for i in open_now if outages[i].droppable),
                key=lambda i: (outages[i].start, i),
                reverse=True,
            )
            for i in candidates:
                apply(outages[i], -1)
                fixed = connected()
                apply(outages[i], +1)
                if fixed:
                    return i
            # No single removal fixes it (stacked causes): drop the most
            # recent and re-examine on the next replay.
            return candidates[0] if candidates else None
        return None

    while True:
        victim = replay()
        if victim is None:
            break
        dropped.add(victim)
    return [o for i, o in enumerate(outages) if i not in dropped]


# ---------------------------------------------------------------- generation
def generate_timeline(
    topology: "Topology",
    *,
    seed: int,
    horizon: float,
    server_mtbf: float | None = None,
    server_mttr: float = 1.0,
    switch_mtbf: float | None = None,
    switch_mttr: float = 1.0,
    max_concurrent_switch_failures: int = 1,
    slowdown_mtbf: float | None = None,
    slowdown_mttr: float = 0.5,
    slowdown_factor: float = 4.0,
    link_mtbf: float | None = None,
    link_mttr: float = 1.0,
    domain_mtbf: float | None = None,
    domain_mttr: float = 1.0,
    domain_kind: str = "rack",
    link_degrade_mtbf: float | None = None,
    link_degrade_mttr: float = 0.5,
    link_degrade_factor: float = 0.25,
    allow_partition: bool = False,
) -> tuple[FaultSpec, ...]:
    """Sample a fail/recover timeline from exponential MTBF/MTTR draws.

    Each element class is enabled by setting its ``*_mtbf``: servers and
    switches (whole-element crash/repair), physical links (``link_mtbf``),
    failure domains (``domain_mtbf`` over the ``domain_kind`` domains of the
    fabric — one draw stream per domain, expanded by the injector into
    correlated per-element events) and link degradation episodes
    (``link_degrade_mtbf``; each episode scales one link to
    ``link_degrade_factor`` × nominal and restores it afterwards).  Up-times
    are ``Exp(mtbf)``-distributed, down-times ``Exp(mttr)``-distributed,
    clocks start at 0 and events past ``horizon`` are dropped — except that
    every failure drawn before the horizon always gets its matching recovery
    (even past the horizon), so a sampled timeline never strands the fabric
    permanently degraded.  An MTTR of exactly 0 is allowed and means
    "instant repair": such outages are dropped whole at sampling time (the
    element never observably fails).

    ``max_concurrent_switch_failures`` caps how many switches may be down at
    once by *skipping* excess failure draws (the element just stays up).
    Independently, a **partition guard** drops any sampled switch, link or
    domain outage whose onset would disconnect the currently-live servers
    from each other, so a sampled timeline can only partition the fabric
    when ``allow_partition=True``.

    ``slowdown_mtbf`` additionally samples transient straggler episodes:
    each server alternates nominal/degraded with ``Exp(slowdown_mtbf)``
    healthy stretches and ``Exp(slowdown_mttr)`` degraded stretches, emitted
    as *timed* :attr:`FaultKind.TASK_SLOWDOWN` specs (``factor =
    slowdown_factor``, ``duration`` = the degraded stretch) whose restores
    the injector synthesises.

    Draw order is fixed (servers, switches, links, domains, degradations,
    slowdowns), so enabling a new class never perturbs the seeded streams of
    the classes before it; with only the pre-existing knobs set the sampled
    timeline is byte-identical to what earlier versions produced.

    All randomness comes from one ``numpy`` generator seeded with ``seed``;
    identical inputs give byte-identical timelines.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)

    def check_rates(label: str, mtbf: float, mttr: float) -> None:
        if mtbf <= 0 or mttr < 0:
            raise ValueError(
                f"{label} MTBF/MTTR must be positive (MTTR 0 = instant repair)"
            )

    def sample_outages(mtbf: float, mttr: float) -> list[tuple[float, float]]:
        """(start, down-duration) episodes; zero-duration ones dropped."""
        episodes: list[tuple[float, float]] = []
        clock = float(rng.exponential(mtbf))
        while clock < horizon:
            down = float(rng.exponential(mttr))
            if down > 0.0:
                episodes.append((clock, down))
            clock += down + float(rng.exponential(mtbf))
        return episodes

    def pair(start: float, down: float, fail: FaultKind, recover: FaultKind,
             target: int, **kw: object) -> tuple[FaultSpec, FaultSpec]:
        return (
            FaultSpec(start, fail, target, **kw),  # type: ignore[arg-type]
            FaultSpec(start + down, recover, target, **kw),  # type: ignore[arg-type]
        )

    outages: list[_Outage] = []

    if server_mtbf is not None:
        check_rates("server", server_mtbf, server_mttr)
        for sid in topology.server_ids:
            for start, down in sample_outages(server_mtbf, server_mttr):
                outages.append(
                    _Outage(
                        start, start + down,
                        servers=frozenset({sid}), switches=frozenset(),
                        links=frozenset(), droppable=False,
                        specs=pair(start, down, FaultKind.SERVER_FAIL,
                                   FaultKind.SERVER_RECOVER, sid),
                    )
                )

    if switch_mtbf is not None:
        check_rates("switch", switch_mtbf, switch_mttr)
        switch_events: list[tuple[float, FaultSpec]] = []
        for wid in topology.switch_ids:
            for start, down in sample_outages(switch_mtbf, switch_mttr):
                fail, recover = pair(start, down, FaultKind.SWITCH_FAIL,
                                     FaultKind.SWITCH_RECOVER, wid)
                switch_events.append((start, fail))
                switch_events.append((start + down, recover))
        # Enforce the concurrency cap in time order: an outage that would
        # push the number of simultaneously-down switches past the cap is
        # dropped whole (its fail *and* its matching recovery), as if the
        # switch had simply stayed up.  Per-switch streams alternate
        # fail/recover strictly in time, so "matching recovery" is always
        # the switch's next recovery event.
        switch_events.sort(key=lambda p: p[0])
        down_set: set[int] = set()
        skip_recovery: set[int] = set()
        open_fail: dict[int, FaultSpec] = {}
        for _, spec in switch_events:
            if spec.kind is FaultKind.SWITCH_FAIL:
                if len(down_set) >= max_concurrent_switch_failures:
                    skip_recovery.add(spec.target)
                    continue
                down_set.add(spec.target)
                open_fail[spec.target] = spec
            else:
                if spec.target in skip_recovery:
                    skip_recovery.discard(spec.target)
                    continue
                down_set.discard(spec.target)
                fail = open_fail.pop(spec.target)
                outages.append(
                    _Outage(
                        fail.time, spec.time,
                        servers=frozenset(),
                        switches=frozenset({spec.target}),
                        links=frozenset(), droppable=True,
                        specs=(fail, spec),
                    )
                )

    if link_mtbf is not None:
        check_rates("link", link_mtbf, link_mttr)
        for link in topology.links:
            u, v = link.key
            for start, down in sample_outages(link_mtbf, link_mttr):
                outages.append(
                    _Outage(
                        start, start + down,
                        servers=frozenset(), switches=frozenset(),
                        links=frozenset({(u, v)}), droppable=True,
                        specs=pair(start, down, FaultKind.LINK_FAIL,
                                   FaultKind.LINK_RECOVER, u, target2=v),
                    )
                )

    if domain_mtbf is not None:
        check_rates("domain", domain_mtbf, domain_mttr)
        for dom in domains_of(topology, domain_kind):
            for start, down in sample_outages(domain_mtbf, domain_mttr):
                outages.append(
                    _Outage(
                        start, start + down,
                        servers=frozenset(dom.servers),
                        switches=frozenset(dom.switches),
                        links=frozenset(), droppable=True,
                        specs=pair(start, down, FaultKind.DOMAIN_FAIL,
                                   FaultKind.DOMAIN_RECOVER, dom.index,
                                   domain=dom.kind),
                    )
                )

    if link_degrade_mtbf is not None:
        check_rates("link degrade", link_degrade_mtbf, link_degrade_mttr)
        if not 0.0 <= link_degrade_factor < 1.0:
            raise ValueError("link degrade factor must be in [0, 1)")
        dead = link_degrade_factor == 0.0
        for link in topology.links:
            u, v = link.key
            for start, down in sample_outages(link_degrade_mtbf,
                                              link_degrade_mttr):
                outages.append(
                    _Outage(
                        start, start + down,
                        servers=frozenset(), switches=frozenset(),
                        links=frozenset({(u, v)}) if dead else frozenset(),
                        droppable=dead,
                        specs=(
                            FaultSpec(start, FaultKind.LINK_DEGRADE, u,
                                      factor=link_degrade_factor, target2=v),
                            FaultSpec(start + down, FaultKind.LINK_DEGRADE, u,
                                      factor=1.0, target2=v),
                        ),
                    )
                )

    outages = _prune_partitioning_outages(topology, outages, allow_partition)
    specs: list[FaultSpec] = [s for outage in outages for s in outage.specs]

    if slowdown_mtbf is not None:
        check_rates("slowdown", slowdown_mtbf, slowdown_mttr)
        if slowdown_factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1.0")
        for sid in topology.server_ids:
            clock = float(rng.exponential(slowdown_mtbf))
            while clock < horizon:
                degraded = float(rng.exponential(slowdown_mttr))
                if degraded > 0.0:
                    specs.append(
                        FaultSpec(
                            clock,
                            FaultKind.TASK_SLOWDOWN,
                            sid,
                            factor=slowdown_factor,
                            duration=degraded,
                        )
                    )
                clock += degraded + float(rng.exponential(slowdown_mtbf))

    return validate_timeline(topology, specs)
