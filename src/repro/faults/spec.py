"""Declarative fault timelines.

A fault timeline is an ordered tuple of :class:`FaultSpec` records — "at
time *t*, element *x* fails / recovers / slows down".  Timelines come from
three sources, all deterministic:

* hand-written specs (tests, the CI smoke run, scripted scenarios);
* JSON-lines fault files (:func:`load_fault_file` / :func:`save_fault_file`),
  the CLI's ``--faults FILE``;
* seeded exponential MTBF/MTTR sampling (:func:`generate_timeline`), the
  CLI's ``--mtbf``/``--mttr`` — the classic memoryless machine-availability
  model used throughout the MapReduce-under-failure literature.

The same timeline can be replayed against every scheduler, which is what
makes degradation comparisons (``repro.experiments.faults``) apples-to-
apples: each baseline sees byte-identical failures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology

__all__ = [
    "FaultKind",
    "FaultSpec",
    "generate_timeline",
    "load_fault_file",
    "save_fault_file",
    "validate_timeline",
]


class FaultKind(Enum):
    """The fault taxonomy (see ``docs/fault_model.md``)."""

    SERVER_FAIL = "server-fail"
    SERVER_RECOVER = "server-recover"
    SWITCH_FAIL = "switch-fail"
    SWITCH_RECOVER = "switch-recover"
    #: Straggler injection: the target server's compute speed is divided by
    #: ``factor`` for tasks launched after the event (factor 1.0 restores).
    TASK_SLOWDOWN = "task-slowdown"


#: Kinds whose target must be a server node.
_SERVER_KINDS = frozenset(
    {FaultKind.SERVER_FAIL, FaultKind.SERVER_RECOVER, FaultKind.TASK_SLOWDOWN}
)
#: Kinds whose target must be a switch node.
_SWITCH_KINDS = frozenset({FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *target* experiences *kind* at *time*.

    ``factor`` only matters for :attr:`FaultKind.TASK_SLOWDOWN`: a factor of
    2.0 halves the server's compute speed; 1.0 restores nominal speed.

    ``duration`` (also slowdown-only) makes the degradation *timed*: a
    positive value schedules the matching restore (factor 1.0) at
    ``time + duration`` automatically, so transient stragglers — the common
    case in production traces — need one spec instead of a hand-paired
    slowdown/restore.  Zero means the slowdown holds until another spec
    changes the server's speed.
    """

    time: float
    kind: FaultKind
    target: int
    factor: float = 1.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")
        if self.target < 0:
            raise ValueError(f"fault target must be a node id, got {self.target}")
        if self.factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {self.factor}")
        if self.duration < 0:
            raise ValueError(
                f"slowdown duration must be non-negative, got {self.duration}"
            )
        if self.duration > 0 and self.kind is not FaultKind.TASK_SLOWDOWN:
            raise ValueError(
                f"duration only applies to task-slowdown specs, "
                f"got {self.kind.value}"
            )

    # ------------------------------------------------------------- serialise
    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
        }
        if self.kind is FaultKind.TASK_SLOWDOWN:
            record["factor"] = self.factor
            if self.duration > 0:
                record["duration"] = self.duration
        return record

    @classmethod
    def from_dict(cls, record: dict[str, object]) -> "FaultSpec":
        try:
            kind = FaultKind(str(record["kind"]))
            return cls(
                time=float(record["time"]),  # type: ignore[arg-type]
                kind=kind,
                target=int(record["target"]),  # type: ignore[arg-type]
                factor=float(record.get("factor", 1.0)),  # type: ignore[arg-type]
                duration=float(record.get("duration", 0.0)),  # type: ignore[arg-type]
            )
        except (KeyError, ValueError) as exc:
            raise ValueError(f"malformed fault record {record!r}: {exc}") from exc


def validate_timeline(
    topology: "Topology", specs: Iterable[FaultSpec]
) -> tuple[FaultSpec, ...]:
    """Check every spec against the fabric and return the sorted timeline.

    Targets must exist and be of the right node class (server kinds target
    servers, switch kinds target switches).  Sorting is by (time, original
    order) so same-instant faults keep their authored order; the event
    queue's kind priority then decides recovery-vs-failure ordering.
    """
    out = []
    for spec in specs:
        if spec.kind in _SERVER_KINDS and not topology.is_server(spec.target):
            raise ValueError(
                f"{spec.kind.value} targets node {spec.target}, "
                f"which is not a server"
            )
        if spec.kind in _SWITCH_KINDS and not topology.is_switch(spec.target):
            raise ValueError(
                f"{spec.kind.value} targets node {spec.target}, "
                f"which is not a switch"
            )
        out.append(spec)
    out.sort(key=lambda s: s.time)
    return tuple(out)


# --------------------------------------------------------------- fault files
def save_fault_file(path: str, specs: Sequence[FaultSpec]) -> None:
    """Write a timeline as JSON lines (one fault per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for spec in specs:
            handle.write(json.dumps(spec.as_dict(), sort_keys=True) + "\n")


def load_fault_file(path: str) -> tuple[FaultSpec, ...]:
    """Read a JSON-lines fault file written by :func:`save_fault_file`."""
    specs: list[FaultSpec] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            specs.append(FaultSpec.from_dict(record))
    specs.sort(key=lambda s: s.time)
    return tuple(specs)


# ---------------------------------------------------------------- generation
def generate_timeline(
    topology: "Topology",
    *,
    seed: int,
    horizon: float,
    server_mtbf: float | None = None,
    server_mttr: float = 1.0,
    switch_mtbf: float | None = None,
    switch_mttr: float = 1.0,
    max_concurrent_switch_failures: int = 1,
    slowdown_mtbf: float | None = None,
    slowdown_mttr: float = 0.5,
    slowdown_factor: float = 4.0,
) -> tuple[FaultSpec, ...]:
    """Sample a fail/recover timeline from exponential MTBF/MTTR draws.

    Each server (when ``server_mtbf`` is set) and each switch (when
    ``switch_mtbf`` is set) alternates up/down: up-times are
    ``Exp(mtbf)``-distributed, down-times ``Exp(mttr)``-distributed, clocks
    start at 0 and events past ``horizon`` are dropped — except that every
    failure drawn before the horizon always gets its matching recovery (even
    past the horizon), so a sampled timeline never strands the fabric
    permanently degraded.

    ``max_concurrent_switch_failures`` caps how many switches may be down at
    once by *skipping* excess failure draws (the element just stays up) —
    without the cap an unlucky seed can partition the fabric outright.

    ``slowdown_mtbf`` additionally samples transient straggler episodes:
    each server alternates nominal/degraded with ``Exp(slowdown_mtbf)``
    healthy stretches and ``Exp(slowdown_mttr)`` degraded stretches, emitted
    as *timed* :attr:`FaultKind.TASK_SLOWDOWN` specs (``factor =
    slowdown_factor``, ``duration`` = the degraded stretch) whose restores
    the injector synthesises.  Slowdown draws happen after all fail/recover
    draws, so enabling them never perturbs the failure portion of a
    same-seed timeline.

    All randomness comes from one ``numpy`` generator seeded with ``seed``;
    identical inputs give byte-identical timelines.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)
    specs: list[FaultSpec] = []

    def sample_element(
        node: int, mtbf: float, mttr: float, fail: FaultKind, recover: FaultKind
    ) -> list[tuple[float, FaultSpec]]:
        events: list[tuple[float, FaultSpec]] = []
        clock = float(rng.exponential(mtbf))
        while clock < horizon:
            down = float(rng.exponential(mttr))
            events.append((clock, FaultSpec(clock, fail, node)))
            events.append((clock + down, FaultSpec(clock + down, recover, node)))
            clock += down + float(rng.exponential(mtbf))
        return events

    if server_mtbf is not None:
        if server_mtbf <= 0 or server_mttr <= 0:
            raise ValueError("server MTBF/MTTR must be positive")
        for sid in topology.server_ids:
            specs.extend(
                spec
                for _, spec in sample_element(
                    sid, server_mtbf, server_mttr,
                    FaultKind.SERVER_FAIL, FaultKind.SERVER_RECOVER,
                )
            )
    if switch_mtbf is not None:
        if switch_mtbf <= 0 or switch_mttr <= 0:
            raise ValueError("switch MTBF/MTTR must be positive")
        switch_events: list[tuple[float, FaultSpec]] = []
        for wid in topology.switch_ids:
            switch_events.extend(
                sample_element(
                    wid, switch_mtbf, switch_mttr,
                    FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER,
                )
            )
        # Enforce the concurrency cap in time order: an outage that would
        # push the number of simultaneously-down switches past the cap is
        # dropped whole (its fail *and* its matching recovery), as if the
        # switch had simply stayed up.  Per-switch streams alternate
        # fail/recover strictly in time, so "matching recovery" is always
        # the switch's next recovery event.
        switch_events.sort(key=lambda pair: pair[0])
        down: set[int] = set()
        skip_recovery: set[int] = set()
        kept: list[FaultSpec] = []
        for _, spec in switch_events:
            if spec.kind is FaultKind.SWITCH_FAIL:
                if len(down) >= max_concurrent_switch_failures:
                    skip_recovery.add(spec.target)
                    continue
                down.add(spec.target)
                kept.append(spec)
            else:
                if spec.target in skip_recovery:
                    skip_recovery.discard(spec.target)
                    continue
                down.discard(spec.target)
                kept.append(spec)
        specs.extend(kept)
    if slowdown_mtbf is not None:
        if slowdown_mtbf <= 0 or slowdown_mttr <= 0:
            raise ValueError("slowdown MTBF/MTTR must be positive")
        if slowdown_factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1.0")
        for sid in topology.server_ids:
            clock = float(rng.exponential(slowdown_mtbf))
            while clock < horizon:
                degraded = float(rng.exponential(slowdown_mttr))
                specs.append(
                    FaultSpec(
                        clock,
                        FaultKind.TASK_SLOWDOWN,
                        sid,
                        factor=slowdown_factor,
                        duration=degraded,
                    )
                )
                clock += degraded + float(rng.exponential(slowdown_mtbf))

    return validate_timeline(topology, specs)
