"""Fault injection layer: timeline → simulator events + live fault state.

:class:`FaultInjector` owns the boundary between a declarative timeline
(:mod:`repro.faults.spec`) and the discrete-event engine: it validates the
timeline against the fabric, pushes one event per fault into the
:class:`~repro.simulator.events.EventQueue`, and keeps the running tally of
what is currently dead plus the ``faults.*`` / ``retries.*`` counters the
observability layer reports.

The *effects* of each event (killing tasks, rerouting flows, restoring
capacity) are applied by the engine's recovery layer — the injector only
answers "what is failed right now?" and "how often did each fault class
fire?", so it can also be driven standalone in tests.

Domain specs (:attr:`~repro.faults.spec.FaultKind.DOMAIN_FAIL` /
``DOMAIN_RECOVER``) are expanded *at schedule time* into one per-element
server/switch event each (servers first, then switches, each ascending), so
the engine's recovery layer never needs to know about domains — a rack
outage is exactly the deterministic event sequence a hand-written timeline
of its members would produce.

Link faults add a second axis of live state: :attr:`failed_links` (hard
down) and :attr:`degraded_links` (capacity factor < 1.0).  A link is *dead*
— unroutable — when it is failed or degraded to factor 0.0; the engine
masks dead links out of routing and the policy DP, and
:meth:`assert_path_clear` enforces that no installed path crosses one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..simulator.events import Event, EventKind, EventQueue
from .domains import FailureDomain, domains_of
from .spec import FaultKind, FaultSpec, validate_timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology

__all__ = ["FaultInjector", "FAULT_EVENT_KINDS"]


#: Simulator event kinds owned by the fault subsystem.
FAULT_EVENT_KINDS = frozenset(
    {
        EventKind.SERVER_FAIL,
        EventKind.SERVER_RECOVER,
        EventKind.SWITCH_FAIL,
        EventKind.SWITCH_RECOVER,
        EventKind.TASK_SLOWDOWN,
        EventKind.LINK_FAIL,
        EventKind.LINK_RECOVER,
        EventKind.LINK_DEGRADE,
    }
)

_EVENT_KIND_OF: dict[FaultKind, EventKind] = {
    FaultKind.SERVER_FAIL: EventKind.SERVER_FAIL,
    FaultKind.SERVER_RECOVER: EventKind.SERVER_RECOVER,
    FaultKind.SWITCH_FAIL: EventKind.SWITCH_FAIL,
    FaultKind.SWITCH_RECOVER: EventKind.SWITCH_RECOVER,
    FaultKind.TASK_SLOWDOWN: EventKind.TASK_SLOWDOWN,
    FaultKind.LINK_FAIL: EventKind.LINK_FAIL,
    FaultKind.LINK_RECOVER: EventKind.LINK_RECOVER,
    FaultKind.LINK_DEGRADE: EventKind.LINK_DEGRADE,
}


def _canonical(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class FaultInjector:
    """Validated fault timeline plus the live failed-element bookkeeping."""

    def __init__(
        self, topology: "Topology", specs: Iterable[FaultSpec]
    ) -> None:
        self.topology = topology
        self.timeline: tuple[FaultSpec, ...] = validate_timeline(topology, specs)
        self._failed_servers: set[int] = set()
        self._failed_switches: set[int] = set()
        self._failed_links: set[tuple[int, int]] = set()
        self._degraded_links: dict[tuple[int, int], float] = {}
        self._domain_cache: dict[str, tuple[FailureDomain, ...]] = {}
        self._park_time: dict[int, float] = {}
        self.parked_dwell: float = 0.0
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------ scheduling
    def _domains(self, kind: str) -> tuple[FailureDomain, ...]:
        if kind not in self._domain_cache:
            self._domain_cache[kind] = domains_of(self.topology, kind)
        return self._domain_cache[kind]

    def schedule(self, queue: EventQueue) -> int:
        """Push every timeline entry into the queue; returns the count.

        Slowdown events carry ``(server, factor)`` payloads, link events
        ``(u, v)`` (degrades ``(u, v, factor)``); every other fault carries
        the bare target node id.  A timed slowdown (positive ``duration``)
        also schedules its restore — the same event kind with factor 1.0 —
        at ``time + duration``.  A domain spec expands into one event per
        member element (servers ascending, then switches ascending).  The
        returned count includes synthesised restores and expansions.
        """
        pushed = 0
        for spec in self.timeline:
            if spec.kind in (FaultKind.DOMAIN_FAIL, FaultKind.DOMAIN_RECOVER):
                domain = self._domains(spec.domain)[spec.target]
                failing = spec.kind is FaultKind.DOMAIN_FAIL
                self.count(
                    "faults.domain_fail" if failing else "faults.domain_recover"
                )
                for sid in domain.servers:
                    queue.push(
                        Event(
                            spec.time,
                            EventKind.SERVER_FAIL if failing
                            else EventKind.SERVER_RECOVER,
                            sid,
                        )
                    )
                    pushed += 1
                for wid in domain.switches:
                    queue.push(
                        Event(
                            spec.time,
                            EventKind.SWITCH_FAIL if failing
                            else EventKind.SWITCH_RECOVER,
                            wid,
                        )
                    )
                    pushed += 1
                continue
            payload: object = spec.target
            if spec.kind is FaultKind.TASK_SLOWDOWN:
                payload = (spec.target, spec.factor)
            elif spec.kind is FaultKind.LINK_DEGRADE:
                payload = (spec.target, spec.target2, spec.factor)
            elif spec.kind in (FaultKind.LINK_FAIL, FaultKind.LINK_RECOVER):
                payload = (spec.target, spec.target2)
            queue.push(Event(spec.time, _EVENT_KIND_OF[spec.kind], payload))
            pushed += 1
            if spec.kind is FaultKind.TASK_SLOWDOWN and spec.duration > 0:
                queue.push(
                    Event(
                        spec.time + spec.duration,
                        EventKind.TASK_SLOWDOWN,
                        (spec.target, 1.0),
                    )
                )
                pushed += 1
        return pushed

    # ------------------------------------------------------------ live state
    @property
    def failed_servers(self) -> frozenset[int]:
        return frozenset(self._failed_servers)

    @property
    def failed_switches(self) -> frozenset[int]:
        return frozenset(self._failed_switches)

    @property
    def failed_links(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._failed_links)

    @property
    def degraded_links(self) -> dict[tuple[int, int], float]:
        """Canonical link key → current capacity factor (< 1.0 entries only)."""
        return dict(self._degraded_links)

    @property
    def dead_links(self) -> frozenset[tuple[int, int]]:
        """Links that carry no traffic: failed or degraded to factor 0.0."""
        dead = set(self._failed_links)
        dead.update(k for k, f in self._degraded_links.items() if f == 0.0)
        return frozenset(dead)

    def link_capacity_factor(self, u: int, v: int) -> float:
        """Effective capacity multiplier for the link (0.0 when failed)."""
        key = _canonical(u, v)
        if key in self._failed_links:
            return 0.0
        return self._degraded_links.get(key, 1.0)

    def mark_server_failed(self, server_id: int) -> bool:
        """Record a server failure; False when it was already down."""
        if server_id in self._failed_servers:
            return False
        self._failed_servers.add(server_id)
        self.count("faults.server_fail")
        return True

    def mark_server_recovered(self, server_id: int) -> bool:
        if server_id not in self._failed_servers:
            return False
        self._failed_servers.discard(server_id)
        self.count("faults.server_recover")
        return True

    def mark_switch_failed(self, switch_id: int) -> bool:
        if switch_id in self._failed_switches:
            return False
        self._failed_switches.add(switch_id)
        self.count("faults.switch_fail")
        return True

    def mark_switch_recovered(self, switch_id: int) -> bool:
        if switch_id not in self._failed_switches:
            return False
        self._failed_switches.discard(switch_id)
        self.count("faults.switch_recover")
        return True

    def mark_link_failed(self, u: int, v: int) -> bool:
        key = _canonical(u, v)
        if key in self._failed_links:
            return False
        self._failed_links.add(key)
        self.count("faults.link_fail")
        return True

    def mark_link_recovered(self, u: int, v: int) -> bool:
        key = _canonical(u, v)
        if key not in self._failed_links:
            return False
        self._failed_links.discard(key)
        self.count("faults.link_recover")
        return True

    def mark_link_degraded(self, u: int, v: int, factor: float) -> bool:
        """Set the link's capacity factor; False when already at ``factor``.

        Factor 1.0 restores nominal capacity (counted as a restore); any
        value below 1.0 is a degradation episode.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"link degrade factor must be in [0, 1], got {factor}")
        key = _canonical(u, v)
        current = self._degraded_links.get(key, 1.0)
        if current == factor:
            return False
        if factor == 1.0:
            self._degraded_links.pop(key, None)
            self.count("faults.link_restore")
        else:
            self._degraded_links[key] = factor
            self.count("faults.link_degrade")
        return True

    def assert_path_clear(self, path: Sequence[int]) -> None:
        """Hard guard: no path may traverse a currently-failed element.

        Called by the engine on every path install/reroute while faults are
        live; a violation is a recovery-layer bug, so it raises rather than
        degrades.  Covers failed switches and dead links (failed or
        degraded-to-zero).
        """
        for node in path:
            if node in self._failed_switches:
                raise RuntimeError(
                    f"routing violation: path {tuple(path)} traverses "
                    f"failed switch {node}"
                )
        dead = self.dead_links
        if dead:
            for a, b in zip(path, path[1:]):
                if _canonical(a, b) in dead:
                    raise RuntimeError(
                        f"routing violation: path {tuple(path)} traverses "
                        f"dead link ({a}, {b})"
                    )

    # -------------------------------------------------------- parked dwell
    def note_parked(self, flow_id: int, now: float) -> None:
        """A flow was parked (no live route) at sim-time ``now``."""
        self._park_time.setdefault(flow_id, now)

    def note_resumed(self, flow_id: int, now: float) -> None:
        """A parked flow left the park (resumed or killed) at ``now``.

        Accumulates the flow's sim-time dwell into ``parked_dwell`` /
        the ``faults.parked_dwell`` summary entry.
        """
        start = self._park_time.pop(flow_id, None)
        if start is not None:
            self.parked_dwell += now - start

    def gauges(self) -> dict[str, float]:
        """Instantaneous fault-state gauges for the telemetry plane.

        Pure reads of the live failed-element sets — sampling them cannot
        perturb a run (the non-perturbation contract of
        :mod:`repro.obs.timeline`).
        """
        return {
            "failed_servers": float(len(self._failed_servers)),
            "failed_switches": float(len(self._failed_switches)),
            "failed_links": float(len(self._failed_links)),
            "degraded_links": float(len(self._degraded_links)),
            "parked_dwell": self.parked_dwell,
        }

    def provenance_context(self) -> dict[str, int]:
        """Failure-state snapshot for reroute/park decision records.

        Pure read of the live failed-element sets; attached by the engine
        so each repair decision records the fault pressure it was taken
        under."""
        return {
            "failed_servers": len(self._failed_servers),
            "failed_switches": len(self._failed_switches),
            "failed_links": len(self._failed_links),
            "degraded_links": len(self._degraded_links),
        }

    # -------------------------------------------------------------- counters
    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def summary(self) -> dict[str, int]:
        """Counter snapshot (sorted keys, for stable reports).

        Includes the cumulative ``faults.parked_dwell`` sim-time (a float)
        whenever any flow was ever parked.
        """
        out: dict[str, int] = dict(self.counters)
        if "faults.flows_parked" in out:
            out["faults.parked_dwell"] = round(self.parked_dwell, 9)  # type: ignore[assignment]
        return dict(sorted(out.items()))
