"""Fault injection layer: timeline → simulator events + live fault state.

:class:`FaultInjector` owns the boundary between a declarative timeline
(:mod:`repro.faults.spec`) and the discrete-event engine: it validates the
timeline against the fabric, pushes one event per fault into the
:class:`~repro.simulator.events.EventQueue`, and keeps the running tally of
what is currently dead plus the ``faults.*`` / ``retries.*`` counters the
observability layer reports.

The *effects* of each event (killing tasks, rerouting flows, restoring
capacity) are applied by the engine's recovery layer — the injector only
answers "what is failed right now?" and "how often did each fault class
fire?", so it can also be driven standalone in tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..simulator.events import Event, EventKind, EventQueue
from .spec import FaultKind, FaultSpec, validate_timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.base import Topology

__all__ = ["FaultInjector", "FAULT_EVENT_KINDS"]


#: Simulator event kinds owned by the fault subsystem.
FAULT_EVENT_KINDS = frozenset(
    {
        EventKind.SERVER_FAIL,
        EventKind.SERVER_RECOVER,
        EventKind.SWITCH_FAIL,
        EventKind.SWITCH_RECOVER,
        EventKind.TASK_SLOWDOWN,
    }
)

_EVENT_KIND_OF: dict[FaultKind, EventKind] = {
    FaultKind.SERVER_FAIL: EventKind.SERVER_FAIL,
    FaultKind.SERVER_RECOVER: EventKind.SERVER_RECOVER,
    FaultKind.SWITCH_FAIL: EventKind.SWITCH_FAIL,
    FaultKind.SWITCH_RECOVER: EventKind.SWITCH_RECOVER,
    FaultKind.TASK_SLOWDOWN: EventKind.TASK_SLOWDOWN,
}


class FaultInjector:
    """Validated fault timeline plus the live failed-element bookkeeping."""

    def __init__(
        self, topology: "Topology", specs: Iterable[FaultSpec]
    ) -> None:
        self.topology = topology
        self.timeline: tuple[FaultSpec, ...] = validate_timeline(topology, specs)
        self._failed_servers: set[int] = set()
        self._failed_switches: set[int] = set()
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------ scheduling
    def schedule(self, queue: EventQueue) -> int:
        """Push every timeline entry into the queue; returns the count.

        Slowdown events carry ``(server, factor)`` payloads; every other
        fault carries the bare target node id.  A timed slowdown (positive
        ``duration``) also schedules its restore — the same event kind with
        factor 1.0 — at ``time + duration``; the returned count includes
        these synthesised restores.
        """
        pushed = 0
        for spec in self.timeline:
            payload: object = spec.target
            if spec.kind is FaultKind.TASK_SLOWDOWN:
                payload = (spec.target, spec.factor)
            queue.push(Event(spec.time, _EVENT_KIND_OF[spec.kind], payload))
            pushed += 1
            if spec.kind is FaultKind.TASK_SLOWDOWN and spec.duration > 0:
                queue.push(
                    Event(
                        spec.time + spec.duration,
                        EventKind.TASK_SLOWDOWN,
                        (spec.target, 1.0),
                    )
                )
                pushed += 1
        return pushed

    # ------------------------------------------------------------ live state
    @property
    def failed_servers(self) -> frozenset[int]:
        return frozenset(self._failed_servers)

    @property
    def failed_switches(self) -> frozenset[int]:
        return frozenset(self._failed_switches)

    def mark_server_failed(self, server_id: int) -> bool:
        """Record a server failure; False when it was already down."""
        if server_id in self._failed_servers:
            return False
        self._failed_servers.add(server_id)
        self.count("faults.server_fail")
        return True

    def mark_server_recovered(self, server_id: int) -> bool:
        if server_id not in self._failed_servers:
            return False
        self._failed_servers.discard(server_id)
        self.count("faults.server_recover")
        return True

    def mark_switch_failed(self, switch_id: int) -> bool:
        if switch_id in self._failed_switches:
            return False
        self._failed_switches.add(switch_id)
        self.count("faults.switch_fail")
        return True

    def mark_switch_recovered(self, switch_id: int) -> bool:
        if switch_id not in self._failed_switches:
            return False
        self._failed_switches.discard(switch_id)
        self.count("faults.switch_recover")
        return True

    def assert_path_clear(self, path: Sequence[int]) -> None:
        """Hard guard: no path may traverse a currently-failed element.

        Called by the engine on every path install/reroute while faults are
        live; a violation is a recovery-layer bug, so it raises rather than
        degrades.
        """
        for node in path:
            if node in self._failed_switches:
                raise RuntimeError(
                    f"routing violation: path {tuple(path)} traverses "
                    f"failed switch {node}"
                )

    def gauges(self) -> dict[str, float]:
        """Instantaneous fault-state gauges for the telemetry plane.

        Pure reads of the live failed-element sets — sampling them cannot
        perturb a run (the non-perturbation contract of
        :mod:`repro.obs.timeline`).
        """
        return {
            "failed_servers": float(len(self._failed_servers)),
            "failed_switches": float(len(self._failed_switches)),
        }

    # -------------------------------------------------------------- counters
    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def summary(self) -> dict[str, int]:
        """Counter snapshot (sorted keys, for stable reports)."""
        return dict(sorted(self.counters.items()))
