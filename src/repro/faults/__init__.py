"""Deterministic fault injection and failure recovery (`repro.faults`).

The paper's Hadoop testbed assumes servers and switches stay up; this
subsystem lets the simulator answer the questions the paper could not run:
what happens to each scheduler's shuffle traffic when part of the fabric
dies mid-job?  Three layers:

* **spec** (:mod:`repro.faults.spec`) — declarative, seed-reproducible fault
  timelines: explicit :class:`FaultSpec` lists, JSON-lines fault files, or
  exponential MTBF/MTTR sampling.
* **injection** (:mod:`repro.faults.injector`) — turns a timeline into
  simulator events and tracks live fabric state + fault counters.
* **domains** (:mod:`repro.faults.domains`) — correlated failure domains
  (racks, pods, power feeds) derived from link adjacency.
* **chaos** (:mod:`repro.faults.chaos`, imported explicitly — it pulls in
  the engine) — seeded randomized chaos runs enforcing the survivability
  contract.
* **recovery** — lives in :mod:`repro.simulator.engine` (task re-execution,
  flow rerouting/parking), :mod:`repro.cluster.state` (server blacklists),
  :mod:`repro.core.policy` (dead-switch routing masks) and
  :mod:`repro.yarnsim` (heartbeat liveness).

See ``docs/fault_model.md`` for the fault taxonomy, the recovery semantics
and the determinism contract.
"""

from .domains import DOMAIN_KINDS, FailureDomain, domains_of
from .injector import FAULT_EVENT_KINDS, FaultInjector
from .spec import (
    FaultKind,
    FaultSpec,
    generate_timeline,
    load_fault_file,
    save_fault_file,
    validate_timeline,
)

__all__ = [
    "DOMAIN_KINDS",
    "FailureDomain",
    "FaultKind",
    "FaultSpec",
    "FaultInjector",
    "FAULT_EVENT_KINDS",
    "domains_of",
    "generate_timeline",
    "load_fault_file",
    "save_fault_file",
    "validate_timeline",
]
