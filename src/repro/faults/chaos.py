"""Randomized chaos harness enforcing the survivability contract.

A *chaos run* drives many seeded randomized fault timelines — correlated
failure domains, switch/server crashes, link failures and degradations,
optionally fabric partitions — through the full engine, across a grid of
schedulers × topologies, and machine-checks the **survivability contract**
on every trial:

* **no silent loss** — every admitted job either completes or the run is
  accounted failed with an explicit reason (``exceeded max_task_retries``);
  a completed run must report exactly one record per submitted job;
* **retry budgets respected** — no task consumes more failure re-executions
  than ``max_task_retries``;
* **routing safety** — no flow ever traverses a failed switch or a dead
  (failed / degraded-to-zero) link; checked continuously by the engine's
  ``assert_path_clear`` guard and the observation layer's path-liveness
  invariant, both in ``raise`` mode;
* **no parked leaks** — a completed run leaves no flow parked forever;
* **determinism** — rerunning a trial from its seed is byte-identical
  (same fingerprint, or the same failure reason);
* **liveness** — a watchdog flags sim-time stalls (unbounded event churn at
  one timestamp) independently of the engine's global ``max_events`` guard.

Anything outside those buckets — an invariant error, an unfinished job at
queue exhaustion, a livelock, a stall — is a **contract violation** and is
reported as such; the harness never swallows one.

This module deliberately is *not* imported from :mod:`repro.faults`'s
package ``__init__`` — it pulls in the whole engine, which the spec/injector
layers must not depend on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis.report import canonical_json
from ..mapreduce import WorkloadGenerator
from ..obs import (
    InvariantChecker,
    ProvenanceConfig,
    decision_digest,
    observe,
)
from ..schedulers import make_scheduler
from ..simulator import MapReduceSimulator, SimulationConfig
from ..topology.base import Topology
from ..topology.tree import TreeConfig, build_tree
from .spec import FaultSpec, generate_timeline

__all__ = [
    "CHAOS_TOPOLOGIES",
    "ChaosConfig",
    "ChaosReport",
    "ChaosTrialResult",
    "WatchdogSimulator",
    "graded_run",
    "run_chaos",
    "run_chaos_trial",
    "sample_chaos_timeline",
]

#: Named fabrics the harness cycles through.  Both are redundancy-2 trees —
#: single-element outages never partition them, so partition trials exercise
#: the ``allow_partition`` path of the timeline sampler rather than tripping
#: over an accidentally fragile fabric.
CHAOS_TOPOLOGIES: dict[str, Callable[[], Topology]] = {
    "small": lambda: build_tree(TreeConfig(depth=2, fanout=4, redundancy=2)),
    "deep": lambda: build_tree(TreeConfig(depth=3, fanout=2, redundancy=2)),
}


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one chaos campaign."""

    trials: int = 50
    seed: int = 0
    schedulers: tuple[str, ...] = ("capacity", "hit")
    topologies: tuple[str, ...] = ("small", "deep")
    jobs_per_trial: int = 3
    horizon: float = 4.0
    max_task_retries: int = 8
    #: Every ``partition_every``-th trial samples with ``allow_partition=True``
    #: (0 disables partition trials entirely).
    partition_every: int = 4
    #: Consecutive same-timestamp events tolerated before the liveness
    #: watchdog declares a sim-time stall.
    stall_limit: int = 20_000
    #: Re-run every trial from its seed and compare fingerprints.
    rerun: bool = True

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if not self.schedulers or not self.topologies:
            raise ValueError("need at least one scheduler and one topology")
        unknown = [t for t in self.topologies if t not in CHAOS_TOPOLOGIES]
        if unknown:
            raise ValueError(
                f"unknown chaos topologies {unknown}; "
                f"known: {sorted(CHAOS_TOPOLOGIES)}"
            )

    def to_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "schedulers": list(self.schedulers),
            "topologies": list(self.topologies),
            "jobs_per_trial": self.jobs_per_trial,
            "horizon": self.horizon,
            "max_task_retries": self.max_task_retries,
            "partition_every": self.partition_every,
            "stall_limit": self.stall_limit,
            "rerun": self.rerun,
        }


@dataclass(frozen=True)
class ChaosTrialResult:
    """Outcome of one seeded trial (after its optional rerun compare)."""

    trial: int
    seed: int
    scheduler: str
    topology: str
    allow_partition: bool
    num_specs: int
    #: ``"ok"`` (all jobs completed) or ``"failed"`` (accounted failure —
    #: the run aborted with an explicit retry-budget reason).
    status: str
    #: The accounted-failure reason; empty for ``"ok"`` runs.
    reason: str
    #: sha256 over the canonical JSON of (summary, counters, events).
    fingerprint: str
    counters: dict[str, float] = field(default_factory=dict)
    #: Survivability-contract violations — empty on a passing trial.
    violations: tuple[str, ...] = ()
    #: Decision-provenance digest (fingerprint + kind:reason tallies) from
    #: a provenance-enabled rerun; attached only to failed/violating
    #: trials so they ship their own explanation.
    provenance: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        body = {
            "trial": self.trial,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "topology": self.topology,
            "allow_partition": self.allow_partition,
            "num_specs": self.num_specs,
            "status": self.status,
            "reason": self.reason,
            "fingerprint": self.fingerprint,
            "counters": dict(sorted(self.counters.items())),
            "violations": list(self.violations),
        }
        if self.provenance:
            body["provenance"] = self.provenance
        return body


@dataclass
class ChaosReport:
    """A full campaign: config + per-trial results, canonically hashable."""

    config: ChaosConfig
    trials: list[ChaosTrialResult] = field(default_factory=list)

    @property
    def violations(self) -> list[ChaosTrialResult]:
        return [t for t in self.trials if t.violations]

    def summary(self) -> dict:
        return {
            "trials": len(self.trials),
            "ok": sum(1 for t in self.trials if t.status == "ok"),
            "failed_accounted": sum(
                1 for t in self.trials if t.status == "failed"
            ),
            "violations": sum(len(t.violations) for t in self.trials),
        }

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "summary": self.summary(),
            "trials": [t.to_dict() for t in self.trials],
        }

    def canonical(self) -> str:
        """Canonical JSON body — byte-identical across reruns of the same
        campaign (the contract the CI smoke compares with ``cmp``)."""
        return canonical_json(self.to_dict())


class WatchdogSimulator(MapReduceSimulator):
    """Engine with a liveness watchdog layered on the dispatch loop.

    The engine's ``max_events`` cap catches global runaway; the watchdog
    catches the sharper failure mode where simulated time stops advancing —
    e.g. a retry loop rescheduling at zero delay.  Read-only: a watchdog
    that never fires leaves the run byte-identical to the plain engine.
    Shared by the chaos harness and the overload campaigns
    (:mod:`repro.experiments.online`), whose liveness legs are the same
    contract.
    """

    def __init__(self, *args, stall_limit: int = 20_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stall_limit = int(stall_limit)
        self._stall_time: float | None = None
        self._stall_count = 0

    def _dispatch(self, event) -> None:
        if event.time == self._stall_time:
            self._stall_count += 1
            if self._stall_count > self._stall_limit:
                raise RuntimeError(
                    f"chaos watchdog: {self._stall_count} consecutive events "
                    f"at sim time {event.time!r} — sim-time stall"
                )
        else:
            self._stall_time = event.time
            self._stall_count = 1
        super()._dispatch(event)


#: Backwards-compatible private alias (pre-rename importers).
_ChaosSimulator = WatchdogSimulator


def sample_chaos_timeline(
    topology: Topology,
    *,
    seed: int,
    horizon: float = 4.0,
    allow_partition: bool = False,
) -> tuple[FaultSpec, ...]:
    """Sample one randomized mixed-class fault timeline.

    A seeded meta-draw first picks which fault classes are active this trial
    and their MTBF/MTTR intensities, then :func:`generate_timeline` samples
    the actual episodes (with its partition guard unless
    ``allow_partition``).  Same seed → byte-identical timeline.
    """
    rng = np.random.default_rng(np.uint64(seed) ^ np.uint64(0xC4A05))
    kwargs: dict = {}
    if rng.random() < 0.7:
        kwargs.update(
            server_mtbf=float(rng.uniform(4.0, 12.0)), server_mttr=0.5
        )
    if rng.random() < 0.6:
        kwargs.update(
            switch_mtbf=float(rng.uniform(8.0, 20.0)), switch_mttr=0.5
        )
    if rng.random() < 0.6:
        kwargs.update(link_mtbf=float(rng.uniform(6.0, 16.0)), link_mttr=0.5)
    if rng.random() < 0.5:
        kwargs.update(
            domain_mtbf=float(rng.uniform(8.0, 24.0)),
            domain_mttr=0.5,
            domain_kind=str(rng.choice(("rack", "pod", "power"))),
        )
    if rng.random() < 0.5:
        kwargs.update(
            link_degrade_mtbf=float(rng.uniform(6.0, 16.0)),
            link_degrade_mttr=0.5,
            link_degrade_factor=float(rng.uniform(0.0, 0.5)),
        )
    return generate_timeline(
        topology,
        seed=seed,
        horizon=horizon,
        allow_partition=allow_partition,
        **kwargs,
    )


def _fingerprint(body: dict) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def graded_run(
    build: Callable[[], tuple[MapReduceSimulator, int]],
    *,
    max_task_retries: int,
) -> tuple[str, str, str, dict, list[str]]:
    """One contract-graded engine pass.

    ``build`` returns a fresh ``(simulator, num_jobs)`` — everything must be
    rebuilt inside it (calling ``graded_run(build)`` twice is the
    rerun-determinism probe).  Returns ``(status, reason, fingerprint,
    counters, violations)``.
    """
    sim, num_jobs = build()
    violations: list[str] = []
    try:
        with observe(checker=InvariantChecker(mode="raise")):
            metrics = sim.run()
    except Exception as exc:  # noqa: BLE001 — every escape is classified
        reason = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, RuntimeError) and "exceeded max_task_retries" in str(
            exc
        ):
            # Accounted failure: the retry budget was spent and the engine
            # said so.  The job did not finish, but nothing was lost
            # silently — the contract allows this outcome.
            status = "failed"
        else:
            status = "failed"
            violations.append(f"unaccounted failure: {reason}")
        counters = dict(sim.faults.summary()) if sim.faults is not None else {}
        return (
            status,
            reason,
            _fingerprint({"error": reason, "counters": counters}),
            counters,
            violations,
        )
    counters = dict(sim.faults.summary()) if sim.faults is not None else {}
    if len(metrics.jobs) != num_jobs:
        violations.append(
            f"silent loss: {num_jobs} jobs submitted, "
            f"{len(metrics.jobs)} accounted"
        )
    retries = getattr(sim, "_retries", {})
    worst = max(retries.values(), default=0)
    if worst > max_task_retries:
        violations.append(
            f"retry budget exceeded: a task consumed {worst} retries "
            f"(budget {max_task_retries})"
        )
    if getattr(sim, "_parked", None):
        violations.append(
            f"parked leak: {len(sim._parked)} flows still parked at end"
        )
    fingerprint = _fingerprint(
        {
            "summary": metrics.summary(),
            "counters": counters,
            "events": sim.events_processed,
        }
    )
    return "ok", "", fingerprint, counters, violations


def run_chaos_trial(
    trial: int,
    *,
    scheduler: str,
    topology: str,
    seed: int,
    jobs_per_trial: int = 3,
    horizon: float = 4.0,
    allow_partition: bool = False,
    max_task_retries: int = 8,
    stall_limit: int = 20_000,
    rerun: bool = True,
) -> ChaosTrialResult:
    """Run one seeded trial (plus its determinism rerun) and grade it."""
    timeline = sample_chaos_timeline(
        CHAOS_TOPOLOGIES[topology](),
        seed=seed,
        horizon=horizon,
        allow_partition=allow_partition,
    )

    def make_build(
        provenance: ProvenanceConfig | None = None,
        sink: list | None = None,
    ) -> Callable[[], tuple[MapReduceSimulator, int]]:
        def build() -> tuple[MapReduceSimulator, int]:
            jobs = WorkloadGenerator(
                seed=seed, input_size_range=(2.0, 4.0)
            ).make_workload(jobs_per_trial, interarrival=0.5)
            config = SimulationConfig(
                seed=seed,
                faults=tuple(timeline),
                max_task_retries=max_task_retries,
                server_speed_spread=0.2,
                provenance=provenance,
            )
            sim = _ChaosSimulator(
                CHAOS_TOPOLOGIES[topology](),
                make_scheduler(scheduler, seed=seed),
                jobs,
                config,
                stall_limit=stall_limit,
            )
            if sink is not None:
                sink.append(sim)
            return sim, len(jobs)

        return build

    build = make_build()
    status, reason, fingerprint, counters, violations = graded_run(
        build, max_task_retries=max_task_retries
    )
    violations = list(violations)
    if rerun:
        status2, reason2, fingerprint2, _, _ = graded_run(
            build, max_task_retries=max_task_retries
        )
        if (status2, reason2, fingerprint2) != (status, reason, fingerprint):
            violations.append(
                "nondeterministic rerun: "
                f"{(status, fingerprint[:12])} vs {(status2, fingerprint2[:12])}"
            )
    provenance: dict = {}
    if status == "failed" or violations:
        # Failed/violating trials ship their own explanation: one more
        # pass with the decision-audit plane on (faithful by the
        # byte-identity contract) yields the decision fingerprint.
        sims: list[MapReduceSimulator] = []
        graded_run(
            make_build(ProvenanceConfig(ring_size=1024), sims),
            max_task_retries=max_task_retries,
        )
        if sims:
            provenance = decision_digest(sims[-1].provenance)
    return ChaosTrialResult(
        trial=trial,
        seed=seed,
        scheduler=scheduler,
        topology=topology,
        allow_partition=allow_partition,
        num_specs=len(timeline),
        status=status,
        reason=reason,
        fingerprint=fingerprint,
        counters=counters,
        violations=tuple(violations),
        provenance=provenance,
    )


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run a full chaos campaign over the schedulers × topologies grid.

    Trial *i* uses seed ``config.seed + i`` and cycles through the grid
    round-robin, so every (scheduler, topology) pair sees a spread of
    timelines; every ``partition_every``-th trial drops the partition guard.
    """
    config = config or ChaosConfig()
    report = ChaosReport(config=config)
    grid = [
        (s, t) for t in config.topologies for s in config.schedulers
    ]
    for i in range(config.trials):
        scheduler, topology = grid[i % len(grid)]
        allow_partition = (
            config.partition_every > 0
            and i % config.partition_every == config.partition_every - 1
        )
        report.trials.append(
            run_chaos_trial(
                i,
                scheduler=scheduler,
                topology=topology,
                seed=config.seed + i,
                jobs_per_trial=config.jobs_per_trial,
                horizon=config.horizon,
                allow_partition=allow_partition,
                max_task_retries=config.max_task_retries,
                stall_limit=config.stall_limit,
                rerun=config.rerun,
            )
        )
    return report
