"""MapReduce workload substrate: jobs, HDFS blocks, waves and shuffle flows."""

from .hdfs import BlockPlacement, HdfsModel, rack_of_servers
from .job import JobSpec, ShuffleClass, shuffle_matrix
from .shuffle import ShuffleFlow, build_flows, flows_between
from .trace import (
    dump_workload,
    load_workload,
    load_workload_file,
    save_workload_file,
)
from .waves import WavePlan, plan_waves
from .workload import PUMA_BENCHMARKS, Benchmark, WorkloadGenerator, class_mix

__all__ = [
    "JobSpec",
    "ShuffleClass",
    "shuffle_matrix",
    "HdfsModel",
    "BlockPlacement",
    "rack_of_servers",
    "ShuffleFlow",
    "build_flows",
    "flows_between",
    "WavePlan",
    "plan_waves",
    "PUMA_BENCHMARKS",
    "Benchmark",
    "WorkloadGenerator",
    "class_mix",
    "dump_workload",
    "load_workload",
    "save_workload_file",
    "load_workload_file",
]
