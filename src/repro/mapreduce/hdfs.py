"""HDFS-like block placement with rack-aware replication.

The paper's Figure 1 contrasts *remote Map traffic* (a Map task reading its
input split from a server that does not hold a replica) with *shuffle
traffic*.  To regenerate that figure we need a distributed-file-system
substrate: this module places each job's input blocks on servers following
HDFS's default policy — first replica on a random server, second on a
different rack, third on another server of that second rack — and answers
locality queries for Map placement.

Racks are derived from the topology: two servers share a rack when they share
an access switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.base import Tier, Topology
from .job import JobSpec

__all__ = ["BlockPlacement", "HdfsModel", "rack_of_servers"]


def rack_of_servers(topology: Topology) -> dict[int, int]:
    """Map each server id to a rack id (its lowest-numbered access switch).

    Servers connected to no access switch (possible in exotic fabrics) get a
    rack of their own, keyed by their negated id so it cannot collide.
    """
    racks: dict[int, int] = {}
    for sid in topology.server_ids:
        access = [
            n
            for n in topology.neighbors(sid)
            if topology.is_switch(n) and topology.tier_of(n) == Tier.ACCESS
        ]
        racks[sid] = min(access) if access else -sid - 1
    return racks


@dataclass(frozen=True)
class BlockPlacement:
    """Replica locations of one input block: a tuple of server ids."""

    block_index: int
    replicas: tuple[int, ...]

    def is_local(self, server_id: int) -> bool:
        return server_id in self.replicas


class HdfsModel:
    """Block placement and locality queries for a cluster.

    One block per Map task (the Hadoop default of one split per block).  The
    replication factor is capped by the number of servers.
    """

    def __init__(
        self,
        topology: Topology,
        replication: int = 3,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.topology = topology
        self.replication = min(replication, topology.num_servers)
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._racks = rack_of_servers(topology)
        self._servers_by_rack: dict[int, list[int]] = {}
        for sid, rack in self._racks.items():
            self._servers_by_rack.setdefault(rack, []).append(sid)
        self._placements: dict[int, list[BlockPlacement]] = {}

    @property
    def num_racks(self) -> int:
        return len(self._servers_by_rack)

    def rack_of(self, server_id: int) -> int:
        return self._racks[server_id]

    # ------------------------------------------------------------- placement
    def place_job_blocks(self, spec: JobSpec) -> list[BlockPlacement]:
        """Place one block per Map task of ``spec``; idempotent per job.

        HDFS's write path puts the first replica of every block on the node
        that wrote the file.  A job's input is typically ingested by a small
        set of client nodes, so block placements *cluster*: we sample a
        writer per job and give each block's first replica to the writer with
        probability ``writer_affinity`` (datanodes fill up and spill
        otherwise).  This clustering is what makes topology-aware reduce
        placement profitable in real clusters.
        """
        if spec.job_id in self._placements:
            return self._placements[spec.job_id]
        writer = int(self._rng.choice(list(self.topology.server_ids)))
        placements = [
            self._place_block(i, writer) for i in range(spec.num_maps)
        ]
        self._placements[spec.job_id] = placements
        return placements

    #: Probability that a block's first replica lands on the job's writer
    #: node (HDFS write-pipeline locality); the rest spill cluster-wide.
    writer_affinity: float = 0.7

    def _place_block(self, block_index: int, writer: int | None = None) -> BlockPlacement:
        servers = list(self.topology.server_ids)
        if writer is not None and self._rng.random() < self.writer_affinity:
            first = writer
        else:
            first = int(self._rng.choice(servers))
        replicas = [first]
        if self.replication >= 2:
            other_racks = [
                r for r in self._servers_by_rack if r != self._racks[first]
            ]
            if other_racks:
                rack = other_racks[int(self._rng.integers(len(other_racks)))]
                second = int(
                    self._rng.choice(self._servers_by_rack[rack])
                )
            else:  # single-rack cluster: fall back to any other server
                pool = [s for s in servers if s not in replicas]
                second = int(self._rng.choice(pool)) if pool else first
            if second not in replicas:
                replicas.append(second)
        while len(replicas) < self.replication:
            # Third and later replicas: same rack as the second when possible.
            anchor_rack = self._racks[replicas[-1]]
            pool = [
                s
                for s in self._servers_by_rack[anchor_rack]
                if s not in replicas
            ] or [s for s in servers if s not in replicas]
            if not pool:
                break
            replicas.append(int(self._rng.choice(pool)))
        return BlockPlacement(block_index=block_index, replicas=tuple(replicas))

    def blocks_of(self, job_id: int) -> list[BlockPlacement]:
        return self._placements[job_id]

    # -------------------------------------------------------------- locality
    def locality(self, job_id: int, block_index: int, server_id: int) -> str:
        """Classify a Map placement: ``node-local``/``rack-local``/``remote``."""
        block = self._placements[job_id][block_index]
        if block.is_local(server_id):
            return "node-local"
        my_rack = self._racks[server_id]
        if any(self._racks[r] == my_rack for r in block.replicas):
            return "rack-local"
        return "remote"

    def remote_map_traffic(
        self, spec: JobSpec, map_servers: dict[int, int]
    ) -> float:
        """Input bytes fetched remotely given Map placements.

        ``map_servers`` maps map index -> hosting server.  A node-local read
        costs nothing; rack-local and remote reads transfer the full split
        (Hadoop streams the block either way; the *rate* differs but the
        figure counts volume).
        """
        blocks = self._placements[spec.job_id]
        split = spec.map_input_size
        total = 0.0
        for idx, server in map_servers.items():
            if not blocks[idx].is_local(server):
                total += split
        return total
