"""MapReduce job model.

A job is described by a :class:`JobSpec` — sizes and rates, independent of
any placement — from which the scheduler layer materialises tasks and
containers.  The key derived object is the **shuffle matrix**: the volume of
intermediate data each Map task sends each Reduce task.  Its row sums are the
Map output partitions, its column sums the Reduce input sizes, and its total
is the job's shuffle volume (the quantity Table 1 / Figure 1 classify jobs
by).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["ShuffleClass", "JobSpec", "shuffle_matrix"]


class ShuffleClass(Enum):
    """The paper's three workload classes (Table 1)."""

    HEAVY = "shuffle-heavy"
    MEDIUM = "shuffle-medium"
    LIGHT = "shuffle-light"


@dataclass(frozen=True)
class JobSpec:
    """Static description of a MapReduce job.

    ``input_size`` is the total HDFS input in size units (think GB);
    ``shuffle_ratio`` scales it to the intermediate (shuffled) volume, the
    defining statistic of the job's :class:`ShuffleClass`.  ``map_rate`` and
    ``reduce_rate`` are compute throughputs (size units per time unit) that
    set task durations in the simulator.  ``skew`` > 0 makes the reduce
    partition sizes Zipf-like instead of uniform, modelling key skew.
    """

    job_id: int
    name: str
    shuffle_class: ShuffleClass
    num_maps: int
    num_reduces: int
    input_size: float
    shuffle_ratio: float
    output_ratio: float = 0.5
    map_rate: float = 2.0
    reduce_rate: float = 2.0
    skew: float = 0.0
    submit_time: float = 0.0
    #: Owning tenant in multi-tenant (online) workloads; batch workloads
    #: leave every job on tenant 0.
    tenant: int = 0

    def __post_init__(self) -> None:
        if self.tenant < 0:
            raise ValueError(f"job {self.name}: tenant must be >= 0")
        if self.num_maps < 1 or self.num_reduces < 1:
            raise ValueError(f"job {self.name}: needs >=1 map and reduce task")
        if self.input_size <= 0:
            raise ValueError(f"job {self.name}: input_size must be positive")
        if self.shuffle_ratio < 0:
            raise ValueError(f"job {self.name}: shuffle_ratio must be >= 0")
        if self.map_rate <= 0 or self.reduce_rate <= 0:
            raise ValueError(f"job {self.name}: compute rates must be positive")
        if self.skew < 0:
            raise ValueError(f"job {self.name}: skew must be >= 0")

    # --------------------------------------------------------------- derived
    @property
    def shuffle_volume(self) -> float:
        """Total intermediate data moved in the shuffle phase."""
        return self.input_size * self.shuffle_ratio

    @property
    def map_input_size(self) -> float:
        """Input split size per Map task (uniform splits)."""
        return self.input_size / self.num_maps

    @property
    def map_duration(self) -> float:
        """Pure compute time of one Map task."""
        return self.map_input_size / self.map_rate

    def reduce_duration(self, reduce_input: float) -> float:
        """Pure compute time of a Reduce task given its shuffle input."""
        return reduce_input / self.reduce_rate

    def describe(self) -> str:
        return (
            f"{self.name} (job {self.job_id}, {self.shuffle_class.value}): "
            f"{self.num_maps}M x {self.num_reduces}R, input {self.input_size:g}, "
            f"shuffle {self.shuffle_volume:g}"
        )


def shuffle_matrix(spec: JobSpec, rng: np.random.Generator | None = None) -> np.ndarray:
    """Volume of intermediate data from each Map to each Reduce task.

    Shape ``(num_maps, num_reduces)``; entries sum to ``spec.shuffle_volume``.
    With ``skew == 0`` the matrix is uniform (hash partitioning of uniform
    keys).  With ``skew > 0`` reduce partitions follow a Zipf-like weight
    ``1 / rank**skew``, and ``rng`` (when given) shuffles which reducer gets
    the heavy partition so repeated jobs do not all hammer reducer 0.
    """
    m, r = spec.num_maps, spec.num_reduces
    weights = 1.0 / np.arange(1, r + 1, dtype=np.float64) ** spec.skew
    if rng is not None and spec.skew > 0:
        rng.shuffle(weights)
    weights /= weights.sum()
    per_map = spec.shuffle_volume / m
    matrix = np.outer(np.full(m, per_map), weights)
    return matrix
