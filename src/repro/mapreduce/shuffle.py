"""Shuffle-flow construction.

"Each map and reduce pair form a shuffle traffic flow" (Section 5.3): flow
``f`` has a source container (hosting the Map task), a destination container
(hosting the Reduce task), a ``size`` (bytes of that map-output partition)
and a ``rate`` (the demand the network policy must carry).  This module turns
a job's shuffle matrix into the flow set that the TAA instance, the policy
controller and the flow-level network simulator all consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .job import JobSpec, shuffle_matrix

__all__ = ["ShuffleFlow", "build_flows", "flows_between"]


@dataclass
class ShuffleFlow:
    """One Map→Reduce intermediate-data transfer.

    ``src_container``/``dst_container`` identify the endpoints; ``size`` is
    the partition volume and ``rate`` the demanded transfer rate used for
    switch-capacity accounting (Eq 3's fifth constraint).  By default the
    rate is the size divided by a nominal epoch so heavier partitions demand
    proportionally more fabric.
    """

    flow_id: int
    job_id: int
    map_index: int
    reduce_index: int
    src_container: int
    dst_container: int
    size: float
    rate: float

    def __post_init__(self) -> None:
        if self.size < 0 or self.rate < 0:
            raise ValueError("flow size/rate must be non-negative")


def build_flows(
    spec: JobSpec,
    map_containers: Sequence[int],
    reduce_containers: Sequence[int],
    rng: np.random.Generator | None = None,
    rate_epoch: float = 1.0,
    first_flow_id: int = 0,
    matrix: np.ndarray | None = None,
    min_size: float = 1e-9,
) -> list[ShuffleFlow]:
    """Materialise the ``num_maps x num_reduces`` flow set of a job.

    ``map_containers[i]`` is the container hosting map ``i`` (likewise for
    reduces).  ``matrix`` overrides the generated shuffle matrix — callers
    that already sampled one (e.g. the simulator) pass it through so flow
    sizes stay consistent.  Near-zero partitions (< ``min_size``) are dropped:
    they carry no data and would only bloat the policy set.
    """
    if len(map_containers) != spec.num_maps:
        raise ValueError("map_containers length must equal spec.num_maps")
    if len(reduce_containers) != spec.num_reduces:
        raise ValueError("reduce_containers length must equal spec.num_reduces")
    if matrix is None:
        matrix = shuffle_matrix(spec, rng)
    elif matrix.shape != (spec.num_maps, spec.num_reduces):
        raise ValueError("matrix shape mismatch with job spec")

    flows: list[ShuffleFlow] = []
    flow_id = first_flow_id
    for mi in range(spec.num_maps):
        for ri in range(spec.num_reduces):
            size = float(matrix[mi, ri])
            if size < min_size:
                continue
            flows.append(
                ShuffleFlow(
                    flow_id=flow_id,
                    job_id=spec.job_id,
                    map_index=mi,
                    reduce_index=ri,
                    src_container=int(map_containers[mi]),
                    dst_container=int(reduce_containers[ri]),
                    size=size,
                    rate=size / rate_epoch,
                )
            )
            flow_id += 1
    return flows


def flows_between(
    flows: Iterable[ShuffleFlow], src_container: int, dst_container: int
) -> list[ShuffleFlow]:
    """The paper's ``P(c_i, c_j)`` selector: flows from one container to
    another."""
    return [
        f
        for f in flows
        if f.src_container == src_container and f.dst_container == dst_container
    ]
