"""Wave decomposition of a job's tasks.

Hadoop slave nodes run up to a fixed number of concurrent Map (and Reduce)
tasks; when a job has more tasks than available containers, tasks execute in
*waves* (Section 5.3).  The scheduling strategy differs by wave: the initial
wave jointly places Maps and Reduces (Section 5.3.1), while subsequent Map
waves keep the Reduce endpoints fixed (Section 5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WavePlan", "plan_waves"]


@dataclass(frozen=True)
class WavePlan:
    """Tasks of one job grouped into execution waves.

    ``map_waves[w]`` is the tuple of map-task indices running in wave ``w``;
    ``reduce_waves`` likewise.  Reduce tasks "tend to complete in one wave"
    (Section 5.3.2) whenever the slot count allows.
    """

    job_id: int
    map_waves: tuple[tuple[int, ...], ...]
    reduce_waves: tuple[tuple[int, ...], ...]

    @property
    def num_map_waves(self) -> int:
        return len(self.map_waves)

    @property
    def num_reduce_waves(self) -> int:
        return len(self.reduce_waves)

    @property
    def is_single_wave(self) -> bool:
        """True when every task fits in the first wave (the §5.3.1 case)."""
        return self.num_map_waves <= 1 and self.num_reduce_waves <= 1


def plan_waves(
    job_id: int,
    num_maps: int,
    num_reduces: int,
    map_slots: int,
    reduce_slots: int,
) -> WavePlan:
    """Split tasks into waves given cluster-wide concurrent slot counts.

    Tasks are assigned to waves in index order — wave ``w`` holds indices
    ``[w*slots, (w+1)*slots)`` — matching Hadoop's FIFO dispatch of pending
    task attempts.
    """
    if num_maps < 0 or num_reduces < 0:
        raise ValueError("task counts must be non-negative")
    if map_slots < 1 or reduce_slots < 1:
        raise ValueError("slot counts must be >= 1")

    def chunk(count: int, size: int) -> tuple[tuple[int, ...], ...]:
        return tuple(
            tuple(range(start, min(start + size, count)))
            for start in range(0, count, size)
        ) or ((),)

    return WavePlan(
        job_id=job_id,
        map_waves=chunk(num_maps, map_slots),
        reduce_waves=chunk(num_reduces, reduce_slots),
    )
