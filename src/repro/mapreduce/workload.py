"""PUMA-like workload generator (Table 1 of the paper).

The paper characterises the Purdue MapReduce Benchmarks Suite into three
shuffle classes and fixes the job mix of its evaluation workload:

=================  ==========================================================
Shuffle-heavy      terasort (5%), index (10%), join (10%),
                   sequence-count (10%), adjacency (5%)            -> 40%
Shuffle-medium     inverted-index (10%), term-vector (10%)         -> 20%
Shuffle-light      grep (15%), wordcount (10%), classification (5%),
                   histogram (10%)                                 -> 40%
=================  ==========================================================

Each benchmark gets a shuffle ratio (intermediate ÷ input volume) consistent
with its class — heavy benchmarks shuffle roughly their whole input (terasort
≈ 1.0), light ones a few percent (grep ≈ 0.02).  The generator samples jobs
from the mix with explicit seeds so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .job import JobSpec, ShuffleClass

__all__ = ["Benchmark", "PUMA_BENCHMARKS", "WorkloadGenerator", "class_mix"]


@dataclass(frozen=True)
class Benchmark:
    """One PUMA benchmark: its class, mix weight and shuffle behaviour."""

    name: str
    shuffle_class: ShuffleClass
    proportion: float
    shuffle_ratio: float
    output_ratio: float
    skew: float = 0.0


#: Table 1 of the paper, with shuffle ratios from the PUMA characterisation.
PUMA_BENCHMARKS: tuple[Benchmark, ...] = (
    # Shuffle-heavy (40%)
    Benchmark("terasort", ShuffleClass.HEAVY, 0.05, 1.00, 1.00),
    Benchmark("index", ShuffleClass.HEAVY, 0.10, 0.95, 0.40),
    Benchmark("join", ShuffleClass.HEAVY, 0.10, 1.10, 0.60, skew=0.5),
    Benchmark("sequence-count", ShuffleClass.HEAVY, 0.10, 0.90, 0.30),
    Benchmark("adjacency", ShuffleClass.HEAVY, 0.05, 1.20, 0.70),
    # Shuffle-medium (20%)
    Benchmark("inverted-index", ShuffleClass.MEDIUM, 0.10, 0.40, 0.25),
    Benchmark("term-vector", ShuffleClass.MEDIUM, 0.10, 0.35, 0.20),
    # Shuffle-light (40%)
    Benchmark("grep", ShuffleClass.LIGHT, 0.15, 0.02, 0.01),
    Benchmark("wordcount", ShuffleClass.LIGHT, 0.10, 0.10, 0.05),
    Benchmark("classification", ShuffleClass.LIGHT, 0.05, 0.05, 0.02),
    Benchmark("histogram", ShuffleClass.LIGHT, 0.10, 0.03, 0.01),
)


def class_mix(
    benchmarks: tuple[Benchmark, ...] = PUMA_BENCHMARKS,
) -> dict[ShuffleClass, float]:
    """Aggregate mix proportion per shuffle class (Table 1's row totals)."""
    mix: dict[ShuffleClass, float] = {}
    for b in benchmarks:
        mix[b.shuffle_class] = mix.get(b.shuffle_class, 0.0) + b.proportion
    return mix


class WorkloadGenerator:
    """Samples :class:`~repro.mapreduce.job.JobSpec` streams from Table 1.

    Sizes are drawn uniformly from ``input_size_range``; task counts scale
    with input size at ``split_size`` per Map task, and the Map:Reduce ratio
    defaults to the common 4:1.  All randomness comes from the seeded
    generator, so two generators with equal seeds emit identical workloads.
    """

    def __init__(
        self,
        seed: int | np.random.Generator = 0,
        benchmarks: tuple[Benchmark, ...] = PUMA_BENCHMARKS,
        input_size_range: tuple[float, float] = (8.0, 32.0),
        split_size: float = 1.0,
        reduces_per_maps: float = 0.25,
        map_rate: float = 2.0,
        reduce_rate: float = 2.0,
    ) -> None:
        total = sum(b.proportion for b in benchmarks)
        if not np.isclose(total, 1.0):
            raise ValueError(f"benchmark proportions must sum to 1, got {total}")
        if input_size_range[0] <= 0 or input_size_range[0] > input_size_range[1]:
            raise ValueError("invalid input_size_range")
        self.benchmarks = benchmarks
        self.input_size_range = input_size_range
        self.split_size = split_size
        self.reduces_per_maps = reduces_per_maps
        self.map_rate = map_rate
        self.reduce_rate = reduce_rate
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._weights = np.array([b.proportion for b in benchmarks])
        self._next_job_id = 0

    def sample_benchmark(self) -> Benchmark:
        idx = int(self._rng.choice(len(self.benchmarks), p=self._weights))
        return self.benchmarks[idx]

    def make_job(
        self,
        benchmark: Benchmark | None = None,
        input_size: float | None = None,
        submit_time: float = 0.0,
    ) -> JobSpec:
        """Sample one job; pass ``benchmark`` to pin the type (used by the
        per-class figures)."""
        bench = benchmark or self.sample_benchmark()
        if input_size is None:
            lo, hi = self.input_size_range
            input_size = float(self._rng.uniform(lo, hi))
        num_maps = max(1, round(input_size / self.split_size))
        num_reduces = max(1, round(num_maps * self.reduces_per_maps))
        spec = JobSpec(
            job_id=self._next_job_id,
            name=f"{bench.name}-{self._next_job_id}",
            shuffle_class=bench.shuffle_class,
            num_maps=num_maps,
            num_reduces=num_reduces,
            input_size=input_size,
            shuffle_ratio=bench.shuffle_ratio,
            output_ratio=bench.output_ratio,
            map_rate=self.map_rate,
            reduce_rate=self.reduce_rate,
            skew=bench.skew,
            submit_time=submit_time,
        )
        self._next_job_id += 1
        return spec

    def make_workload(
        self,
        num_jobs: int,
        interarrival: float = 0.0,
    ) -> list[JobSpec]:
        """Sample ``num_jobs`` jobs; ``interarrival`` spaces submit times
        (exponential when > 0, all-at-once when 0)."""
        jobs: list[JobSpec] = []
        t = 0.0
        for _ in range(num_jobs):
            jobs.append(self.make_job(submit_time=t))
            if interarrival > 0:
                t += float(self._rng.exponential(interarrival))
        return jobs

    def jobs_of_class(self, shuffle_class: ShuffleClass, num_jobs: int) -> list[JobSpec]:
        """Sample jobs restricted to one shuffle class (Figures 1 and 8a)."""
        pool = [b for b in self.benchmarks if b.shuffle_class == shuffle_class]
        weights = np.array([b.proportion for b in pool])
        weights = weights / weights.sum()
        jobs = []
        for _ in range(num_jobs):
            bench = pool[int(self._rng.choice(len(pool), p=weights))]
            jobs.append(self.make_job(benchmark=bench))
        return jobs
