"""Workload trace serialisation.

Experiments want reproducible inputs that can be shipped around: this module
round-trips a list of :class:`~repro.mapreduce.job.JobSpec` through JSON
lines (one job per line), the format cluster-trace archives commonly use.
The schema is versioned so future fields stay backward compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .job import JobSpec, ShuffleClass

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "job_to_record",
    "job_from_record",
    "dump_workload",
    "load_workload",
    "save_workload_file",
    "load_workload_file",
]

TRACE_SCHEMA_VERSION = 1


def job_to_record(spec: JobSpec) -> dict:
    """One JSON-serialisable record per job."""
    return {
        "v": TRACE_SCHEMA_VERSION,
        "job_id": spec.job_id,
        "name": spec.name,
        "class": spec.shuffle_class.value,
        "num_maps": spec.num_maps,
        "num_reduces": spec.num_reduces,
        "input_size": spec.input_size,
        "shuffle_ratio": spec.shuffle_ratio,
        "output_ratio": spec.output_ratio,
        "map_rate": spec.map_rate,
        "reduce_rate": spec.reduce_rate,
        "skew": spec.skew,
        "submit_time": spec.submit_time,
        "tenant": spec.tenant,
    }


def job_from_record(record: dict) -> JobSpec:
    """Inverse of :func:`job_to_record`; validates the schema version."""
    version = record.get("v", 0)
    if version > TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"trace schema v{version} is newer than supported "
            f"v{TRACE_SCHEMA_VERSION}"
        )
    return JobSpec(
        job_id=int(record["job_id"]),
        name=str(record["name"]),
        shuffle_class=ShuffleClass(record["class"]),
        num_maps=int(record["num_maps"]),
        num_reduces=int(record["num_reduces"]),
        input_size=float(record["input_size"]),
        shuffle_ratio=float(record["shuffle_ratio"]),
        output_ratio=float(record.get("output_ratio", 0.5)),
        map_rate=float(record.get("map_rate", 2.0)),
        reduce_rate=float(record.get("reduce_rate", 2.0)),
        skew=float(record.get("skew", 0.0)),
        submit_time=float(record.get("submit_time", 0.0)),
        tenant=int(record.get("tenant", 0)),
    )


def dump_workload(jobs: Iterable[JobSpec]) -> str:
    """Serialise jobs to JSON lines (submission order preserved)."""
    return "\n".join(json.dumps(job_to_record(j), sort_keys=True) for j in jobs)


def load_workload(text: str) -> list[JobSpec]:
    """Parse JSON-lines text back into job specs; blank lines are skipped."""
    jobs = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {line_number}: invalid JSON") from exc
        jobs.append(job_from_record(record))
    return jobs


def save_workload_file(path: str | Path, jobs: Iterable[JobSpec]) -> None:
    Path(path).write_text(dump_workload(jobs) + "\n", encoding="utf-8")


def load_workload_file(path: str | Path) -> list[JobSpec]:
    return load_workload(Path(path).read_text(encoding="utf-8"))
