"""repro — reproduction of the ICPP 2018 Hit-Scheduler paper.

Public API re-exports the pieces a downstream user needs: topology
generators, the workload generator, the TAA core (Hit-Scheduler), the
baseline schedulers and the discrete-event simulator.
"""

from . import analysis, cluster, core, experiments, mapreduce, obs, schedulers, simulator, topology, yarnsim

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "cluster",
    "core",
    "experiments",
    "mapreduce",
    "obs",
    "schedulers",
    "simulator",
    "topology",
    "yarnsim",
    "__version__",
]
