"""YARN-like control plane (Section 6): requests, RM, AM, NodeManagers."""

from .am import ApplicationMaster
from .nm import LaunchedContainer, NodeManager
from .request import ANY_HOST, HitResourceRequest, ResourceRequest
from .rm import GrantedContainer, ResourceManager
from .topologyaware import TopologyAwareTaskDict

__all__ = [
    "ApplicationMaster",
    "NodeManager",
    "LaunchedContainer",
    "ResourceManager",
    "GrantedContainer",
    "ResourceRequest",
    "HitResourceRequest",
    "ANY_HOST",
    "TopologyAwareTaskDict",
]
