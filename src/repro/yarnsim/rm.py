"""ResourceManager: grants containers against resource requests (Section 6.3).

The RM owns the NodeManagers and answers ``allocate`` calls from
ApplicationMasters.  Placement policy:

* a :class:`~repro.yarnsim.request.HitResourceRequest` is granted on its
  preferred host when that node has headroom — the paper's
  ``getContainer(Hit-ResourceRequest, node)`` match — falling back to the
  closest (fewest-switches) feasible node when ``relax_locality`` allows;
* a plain wildcard request is granted heartbeat-round-robin, the Capacity
  Scheduler behaviour.

Under an open-loop workload the all-or-error :meth:`ResourceManager.allocate`
contract is too brittle — an overloaded cluster legitimately cannot grant
everything at once.  :meth:`ResourceManager.try_allocate` grants what fits
and parks the remainder on a FIFO deferred queue; callers later call
:meth:`ResourceManager.drain_deferred` (e.g. after releases) to hand out the
backlog in arrival order.  Strict FIFO keeps grants deterministic and
starvation-free: the head blocks the queue until it fits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..cluster.resources import Resources
from ..topology.base import Topology
from .nm import LaunchedContainer, NodeManager
from .request import ANY_HOST, HitResourceRequest, ResourceRequest

__all__ = ["GrantedContainer", "ResourceManager"]


@dataclass(frozen=True)
class GrantedContainer:
    """The RM's reply to a satisfied request."""

    container_id: int
    hostname: str
    server_id: int
    capability: Resources


class ResourceManager:
    """Cluster-wide resource arbiter with pluggable request semantics."""

    def __init__(
        self, topology: Topology, heartbeat_expiry: float | None = None
    ) -> None:
        self.topology = topology
        #: A node whose last heartbeat lags ``now`` by more than this is
        #: declared lost by :meth:`expire_nodes` (None disables liveness
        #: tracking entirely — the pre-fault behaviour).
        self.heartbeat_expiry = heartbeat_expiry
        self.nodes: dict[str, NodeManager] = {}
        for server in topology.servers():
            self.nodes[server.name] = NodeManager(
                server_id=server.node_id,
                hostname=server.name,
                capacity=Resources.from_tuple(server.resource_capacity),
            )
        self._lost: set[str] = set()
        self._heartbeat_order = sorted(self.nodes)
        self._cursor = 0
        self._next_container_id = 0
        self._applications: dict[int, str] = {}
        self._next_app_id = 0
        #: Container ids granted against speculative (backup) requests, kept
        #: until the container is released or killed — the RM-side ledger
        #: behind :meth:`speculative_load`.
        self._speculative: set[int] = set()
        #: FIFO backlog of (app_id, request) pairs :meth:`try_allocate`
        #: could not satisfy immediately; drained by :meth:`drain_deferred`.
        self._deferred: deque[tuple[int, ResourceRequest]] = deque()

    # ----------------------------------------------------------- applications
    def register_application(self, name: str) -> int:
        app_id = self._next_app_id
        self._next_app_id += 1
        self._applications[app_id] = name
        return app_id

    def application_name(self, app_id: int) -> str:
        return self._applications[app_id]

    # -------------------------------------------------------------- allocate
    def allocate(
        self, app_id: int, requests: list[ResourceRequest]
    ) -> list[GrantedContainer]:
        """Grant containers for a batch of requests (all-or-error).

        Raises ``RuntimeError`` when a request cannot be satisfied anywhere;
        a real RM would defer it to a later heartbeat, but for the simulation
        workloads an unsatisfiable batch is a configuration bug worth
        surfacing immediately.
        """
        if app_id not in self._applications:
            raise KeyError(f"unknown application {app_id}")
        granted: list[GrantedContainer] = []
        for request in requests:
            for _ in range(request.num_containers):
                granted.append(self._grant_one(request))
        return granted

    def try_allocate(
        self, app_id: int, requests: list[ResourceRequest]
    ) -> tuple[list[GrantedContainer], list[ResourceRequest]]:
        """Grant what fits now, defer the rest (overload-tolerant allocate).

        Returns ``(granted, deferred)``.  Deferred requests are queued FIFO
        internally (one entry per *container*, so multi-container requests
        split); :meth:`drain_deferred` retries them later.  Unlike
        :meth:`allocate`, an unsatisfiable request here is not an error —
        under an open-loop workload it is the normal overloaded state.
        """
        if app_id not in self._applications:
            raise KeyError(f"unknown application {app_id}")
        granted: list[GrantedContainer] = []
        deferred: list[ResourceRequest] = []
        for request in requests:
            for _ in range(request.num_containers):
                grant = self._try_grant_one(request)
                if grant is None:
                    deferred.append(request)
                    self._deferred.append((app_id, request))
                else:
                    granted.append(grant)
        return granted, deferred

    def drain_deferred(
        self,
    ) -> list[tuple[int, ResourceRequest, GrantedContainer]]:
        """Grant deferred requests in strict FIFO order.

        Stops at the first request that still does not fit (head-of-line
        blocking is deliberate: it keeps the order deterministic and no
        request can be starved by later, smaller ones).  Returns the
        ``(app_id, request, grant)`` triples handed out this round.
        """
        drained: list[tuple[int, ResourceRequest, GrantedContainer]] = []
        while self._deferred:
            app_id, request = self._deferred[0]
            grant = self._try_grant_one(request)
            if grant is None:
                break
            self._deferred.popleft()
            drained.append((app_id, request, grant))
        return drained

    def deferred_count(self) -> int:
        """Containers currently waiting on the deferred-grant queue."""
        return len(self._deferred)

    def occupancy(self) -> float:
        """Fraction of live-node memory currently held by containers.

        The RM-side analogue of ``ClusterState.occupancy`` — the load signal
        an admission layer reads to decide backpressure.  1.0 when every
        node is lost (a dead cluster is a fully loaded cluster).
        """
        total = used = 0.0
        for node in self.nodes.values():
            if node.hostname in self._lost:
                continue
            total += node.capacity.memory
            used += node.capacity.memory - node.available.memory
        if total <= 0:
            return 1.0
        return min(1.0, used / total)

    def _grant_one(self, request: ResourceRequest) -> GrantedContainer:
        grant = self._try_grant_one(request)
        if grant is None:
            raise RuntimeError(
                f"no node can satisfy request {request.resource_name!r} "
                f"({request.capability})"
            )
        return grant

    def _try_grant_one(self, request: ResourceRequest) -> GrantedContainer | None:
        node = self._select_node(request)
        if node is None:
            return None
        cid = self._next_container_id
        self._next_container_id += 1
        node.launch(
            LaunchedContainer(
                container_id=cid,
                capability=request.capability,
                task=str(request.task) if request.task else None,
            )
        )
        if request.speculative:
            self._speculative.add(cid)
        return GrantedContainer(
            container_id=cid,
            hostname=node.hostname,
            server_id=node.server_id,
            capability=request.capability,
        )

    def _select_node(self, request: ResourceRequest) -> NodeManager | None:
        avoid = request.avoid_host
        if isinstance(request, HitResourceRequest) or not request.is_anywhere:
            preferred = self.nodes.get(request.resource_name)
            if preferred is None:
                raise KeyError(f"unknown host {request.resource_name!r}")
            if (
                preferred.hostname not in self._lost
                and preferred.hostname != avoid
                and preferred.can_launch(request.capability)
            ):
                return preferred
            if not request.relax_locality:
                return None
            return self._closest_feasible(preferred, request.capability, avoid)
        return self._round_robin(request.capability, avoid)

    def _round_robin(
        self, capability: Resources, avoid: str | None = None
    ) -> NodeManager | None:
        n = len(self._heartbeat_order)
        for offset in range(n):
            hostname = self._heartbeat_order[(self._cursor + offset) % n]
            if hostname in self._lost or hostname == avoid:
                continue
            node = self.nodes[hostname]
            if node.can_launch(capability):
                self._cursor = (self._cursor + offset + 1) % n
                return node
        return None

    def _closest_feasible(
        self,
        preferred: NodeManager,
        capability: Resources,
        avoid: str | None = None,
    ) -> NodeManager | None:
        """Fallback for a full preferred host: nearest node in switch hops."""
        dist = self.topology.hop_distances_from(preferred.server_id)
        candidates = [
            node
            for node in self.nodes.values()
            if node is not preferred
            and node.hostname not in self._lost
            and node.hostname != avoid
            and node.can_launch(capability)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (dist[n.server_id], n.hostname))

    # -------------------------------------------------------------- liveness
    @property
    def lost_nodes(self) -> frozenset[str]:
        """Hostnames currently declared lost."""
        return frozenset(self._lost)

    def record_heartbeat(self, hostname: str, now: float) -> dict[str, object]:
        """Process one node heartbeat; a lost node that heartbeats again
        rejoins the cluster (empty — its containers were already drained)."""
        node = self.nodes[hostname]
        status = node.heartbeat(now)
        self._lost.discard(hostname)
        return status

    def expire_nodes(self, now: float) -> list[GrantedContainer]:
        """Declare every over-expiry node lost and return its dead grants.

        Mirrors YARN's NM liveness monitor: a node that missed heartbeats
        for longer than ``heartbeat_expiry`` is drained, its containers are
        reported back to the caller (the ApplicationMaster's completed-
        container list with a failure exit status), and no further grants
        land on it until it heartbeats again.  Callers typically pass the
        result to :meth:`regrant`.
        """
        if self.heartbeat_expiry is None:
            return []
        dead: list[GrantedContainer] = []
        for hostname in self._heartbeat_order:
            if hostname in self._lost:
                continue
            node = self.nodes[hostname]
            if now - node.last_heartbeat <= self.heartbeat_expiry:
                continue
            self._lost.add(hostname)
            for lost in node.drain():
                dead.append(
                    GrantedContainer(
                        container_id=lost.container_id,
                        hostname=hostname,
                        server_id=node.server_id,
                        capability=lost.capability,
                    )
                )
        return dead

    def regrant(self, dead: list[GrantedContainer]) -> list[GrantedContainer]:
        """Re-grant replacements for dead containers on live nodes
        (round-robin, fresh container ids).  Raises ``RuntimeError`` when the
        surviving cluster cannot absorb a replacement."""
        replacements: list[GrantedContainer] = []
        for grant in dead:
            node = self._round_robin(grant.capability)
            if node is None:
                raise RuntimeError(
                    f"no live node can re-grant container "
                    f"{grant.container_id} ({grant.capability})"
                )
            cid = self._next_container_id
            self._next_container_id += 1
            node.launch(
                LaunchedContainer(container_id=cid, capability=grant.capability)
            )
            replacements.append(
                GrantedContainer(
                    container_id=cid,
                    hostname=node.hostname,
                    server_id=node.server_id,
                    capability=grant.capability,
                )
            )
        return replacements

    # ------------------------------------------------------------------ misc
    def release(self, granted: GrantedContainer) -> None:
        self.nodes[granted.hostname].release(granted.container_id)
        self._speculative.discard(granted.container_id)

    def kill(self, granted: GrantedContainer) -> None:
        """Forcibly stop a container (speculation's kill-loser order).

        Resource-wise identical to :meth:`release`; the NodeManager records
        the kill separately so its status reports distinguish preempted
        containers from graceful completions."""
        self.nodes[granted.hostname].kill(granted.container_id)
        self._speculative.discard(granted.container_id)

    def promote(self, granted: GrantedContainer) -> None:
        """Strike a backup from the speculative ledger: it won its race and
        is now the task's committed attempt."""
        self._speculative.discard(granted.container_id)

    def speculative_load(self) -> Resources:
        """Resources currently held by speculative (backup) containers."""
        total = Resources.zero()
        for node in self.nodes.values():
            for cid in self._speculative:
                container = node.running_container(cid)
                if container is not None:
                    total = total + container.capability
        return total

    def cluster_available(self) -> Resources:
        total = Resources.zero()
        for node in self.nodes.values():
            if node.hostname in self._lost:
                continue
            total = total + node.available
        return total
