"""NodeManager: per-server container launcher (Section 6.3).

Tracks the containers granted on one node and enforces the node's resource
capacity — the last line of defence behind the scheduler's bookkeeping, just
like the real NodeManager refuses launches that exceed its advertised
resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.resources import Resources

__all__ = ["LaunchedContainer", "NodeManager"]


@dataclass(frozen=True)
class LaunchedContainer:
    """A granted container running on a node."""

    container_id: int
    capability: Resources
    task: str | None = None


class NodeManager:
    """One node's manager: capacity accounting + container lifecycle."""

    def __init__(self, server_id: int, hostname: str, capacity: Resources) -> None:
        self.server_id = server_id
        self.hostname = hostname
        self.capacity = capacity
        self._running: dict[int, LaunchedContainer] = {}
        self._used = Resources.zero()

    @property
    def used(self) -> Resources:
        return self._used

    @property
    def available(self) -> Resources:
        return self.capacity - self._used

    def can_launch(self, capability: Resources) -> bool:
        return capability.fits_in(self.available)

    def launch(self, container: LaunchedContainer) -> None:
        """Start a container; raises when the node lacks headroom."""
        if container.container_id in self._running:
            raise ValueError(f"container {container.container_id} already running")
        if not container.capability.fits_in(self.available):
            raise RuntimeError(
                f"node {self.hostname}: insufficient resources for "
                f"container {container.container_id}"
            )
        self._running[container.container_id] = container
        self._used = self._used + container.capability

    def release(self, container_id: int) -> LaunchedContainer:
        """Stop a container and refund its resources."""
        container = self._running.pop(container_id)
        self._used = self._used - container.capability
        return container

    def heartbeat(self) -> dict[str, object]:
        """Node status report, as the RM would receive it."""
        return {
            "hostname": self.hostname,
            "running": sorted(self._running),
            "used": self._used.as_tuple(),
            "available": self.available.as_tuple(),
        }

    def __len__(self) -> int:
        return len(self._running)
