"""NodeManager: per-server container launcher (Section 6.3).

Tracks the containers granted on one node and enforces the node's resource
capacity — the last line of defence behind the scheduler's bookkeeping, just
like the real NodeManager refuses launches that exceed its advertised
resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.resources import Resources

__all__ = ["LaunchedContainer", "NodeManager"]


@dataclass(frozen=True)
class LaunchedContainer:
    """A granted container running on a node."""

    container_id: int
    capability: Resources
    task: str | None = None


class NodeManager:
    """One node's manager: capacity accounting + container lifecycle."""

    def __init__(self, server_id: int, hostname: str, capacity: Resources) -> None:
        self.server_id = server_id
        self.hostname = hostname
        self.capacity = capacity
        self._running: dict[int, LaunchedContainer] = {}
        self._used = Resources.zero()
        #: Simulated timestamp of the node's last heartbeat.  The RM's
        #: liveness sweep (:meth:`~repro.yarnsim.rm.ResourceManager.
        #: expire_nodes`) declares the node lost once this lags past the
        #: configured expiry — YARN's ``nm.liveness-monitor`` behaviour.
        self.last_heartbeat: float = 0.0
        #: Containers forcibly stopped on this node (speculation's
        #: kill-loser orders), reported in heartbeats.
        self.killed_count: int = 0

    @property
    def used(self) -> Resources:
        return self._used

    @property
    def available(self) -> Resources:
        return self.capacity - self._used

    def can_launch(self, capability: Resources) -> bool:
        return capability.fits_in(self.available)

    def launch(self, container: LaunchedContainer) -> None:
        """Start a container; raises when the node lacks headroom."""
        if container.container_id in self._running:
            raise ValueError(f"container {container.container_id} already running")
        if not container.capability.fits_in(self.available):
            raise RuntimeError(
                f"node {self.hostname}: insufficient resources for "
                f"container {container.container_id}"
            )
        self._running[container.container_id] = container
        self._used = self._used + container.capability

    def release(self, container_id: int) -> LaunchedContainer:
        """Stop a container and refund its resources."""
        container = self._running.pop(container_id)
        self._used = self._used - container.capability
        return container

    def kill(self, container_id: int) -> LaunchedContainer:
        """Forcibly stop a container — the losing attempt of a speculation
        pair.  Same resource refund as :meth:`release`, but counted so the
        heartbeat report exposes how many containers were preempted."""
        container = self.release(container_id)
        self.killed_count += 1
        return container

    def running_container(self, container_id: int) -> LaunchedContainer | None:
        """The running container with this id, or None."""
        return self._running.get(container_id)

    def heartbeat(self, now: float | None = None) -> dict[str, object]:
        """Node status report, as the RM would receive it.

        Passing ``now`` stamps :attr:`last_heartbeat` (the liveness signal);
        omitting it keeps the report side-effect free."""
        if now is not None:
            self.last_heartbeat = now
        return {
            "hostname": self.hostname,
            "running": sorted(self._running),
            "used": self._used.as_tuple(),
            "available": self.available.as_tuple(),
            "last_heartbeat": self.last_heartbeat,
            "killed": self.killed_count,
        }

    def drain(self) -> list[LaunchedContainer]:
        """Release every running container at once (node declared lost)."""
        lost = [self._running[cid] for cid in sorted(self._running)]
        self._running.clear()
        self._used = Resources.zero()
        return lost

    def __len__(self) -> int:
        return len(self._running)
