"""ApplicationMaster: per-job request generation (Section 6.2-6.3).

The AM turns a job's task list into resource requests.  With a
:class:`~repro.yarnsim.topologyaware.TopologyAwareTaskDict` attached, it
emits :class:`~repro.yarnsim.request.HitResourceRequest` objects whose
resource-name is each task's preferred host (the paper's online phase);
without one, it emits plain wildcard requests (stock behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.container import TaskKind, TaskRef
from ..cluster.resources import Resources
from ..mapreduce.job import JobSpec
from .request import ANY_HOST, HitResourceRequest, ResourceRequest
from .rm import GrantedContainer, ResourceManager
from .topologyaware import TopologyAwareTaskDict

__all__ = ["ApplicationMaster"]

#: YARN priorities: maps before reduces (lower value = higher priority).
_MAP_PRIORITY = 5
_REDUCE_PRIORITY = 10


@dataclass
class ApplicationMaster:
    """Drives one job's container acquisition against a ResourceManager."""

    rm: ResourceManager
    job: JobSpec
    container_capability: Resources = field(
        default_factory=lambda: Resources(1.0, 0.0)
    )
    taskdict: TopologyAwareTaskDict | None = None
    app_id: int = -1
    granted: dict[str, GrantedContainer] = field(default_factory=dict)
    #: Speculative backup grants, keyed like :attr:`granted` — at most one
    #: backup per task may be outstanding.
    backups: dict[str, GrantedContainer] = field(default_factory=dict)
    #: Requests :meth:`acquire_available` could not satisfy yet; the RM holds
    #: matching entries on its deferred queue and delivers grants later.
    pending: list[ResourceRequest] = field(default_factory=list)

    def register(self) -> int:
        self.app_id = self.rm.register_application(self.job.name)
        return self.app_id

    # --------------------------------------------------------------- requests
    def build_requests(self) -> list[ResourceRequest]:
        """One request per task, maps first (YARN priority order)."""
        requests: list[ResourceRequest] = []
        for kind, count, priority in (
            (TaskKind.MAP, self.job.num_maps, _MAP_PRIORITY),
            (TaskKind.REDUCE, self.job.num_reduces, _REDUCE_PRIORITY),
        ):
            for index in range(count):
                task = TaskRef(self.job.job_id, kind, index)
                requests.append(self._request_for(task, priority))
        return requests

    def _request_for(self, task: TaskRef, priority: int) -> ResourceRequest:
        preferred = (
            self.taskdict.preferred_host(task) if self.taskdict else None
        )
        if preferred is not None:
            return HitResourceRequest(
                priority=priority,
                capability=self.container_capability,
                resource_name=preferred,
                task=task,
            )
        return ResourceRequest(
            priority=priority,
            capability=self.container_capability,
            resource_name=ANY_HOST,
            task=task,
        )

    # ----------------------------------------------------------------- driving
    def acquire_containers(self) -> dict[str, GrantedContainer]:
        """Register (if needed), request, and record the granted containers.

        Returns ``{str(task): granted}`` for every task of the job.
        """
        if self.app_id < 0:
            self.register()
        requests = self.build_requests()
        granted = self.rm.allocate(self.app_id, requests)
        for request, grant in zip(requests, granted):
            assert request.task is not None
            self.granted[str(request.task)] = grant
        return dict(self.granted)

    def acquire_available(self) -> dict[str, GrantedContainer]:
        """Overload-tolerant acquire: take what the RM can grant *now*.

        Unlike :meth:`acquire_containers` this never raises on a full
        cluster — unsatisfied requests land on the RM's deferred queue and
        are mirrored in :attr:`pending`; the caller feeds later
        ``rm.drain_deferred()`` grants back through
        :meth:`record_deferred_grant`.  Returns the grants made so far.
        """
        if self.app_id < 0:
            self.register()
        requests = self.build_requests()
        granted, deferred = self.rm.try_allocate(self.app_id, requests)
        deferred_ids = {id(r) for r in deferred}
        grants = iter(granted)
        for request in requests:
            if id(request) in deferred_ids:
                self.pending.append(request)
                continue
            grant = next(grants)
            assert request.task is not None
            self.granted[str(request.task)] = grant
        return dict(self.granted)

    def record_deferred_grant(
        self, request: ResourceRequest, grant: GrantedContainer
    ) -> None:
        """Record a grant the RM delivered from its deferred queue."""
        assert request.task is not None
        self.granted[str(request.task)] = grant
        self.pending = [r for r in self.pending if r is not request]

    @property
    def fully_granted(self) -> bool:
        """True once every task of the job holds a container."""
        return not self.pending and len(self.granted) == (
            self.job.num_maps + self.job.num_reduces
        )

    # ------------------------------------------------------------ speculation
    def request_backup(self, task: TaskRef) -> GrantedContainer:
        """Acquire one speculative container duplicating ``task``.

        The original attempt must already hold a grant; the backup request
        carries ``avoid_host`` so the RM cannot co-locate the duplicate with
        the straggler it is meant to outrun.  At most one backup per task.
        """
        key = str(task)
        original = self.granted.get(key)
        if original is None:
            raise KeyError(f"no running attempt for task {key}")
        if key in self.backups:
            raise ValueError(f"task {key} already has a backup attempt")
        priority = (
            _MAP_PRIORITY if task.kind is TaskKind.MAP else _REDUCE_PRIORITY
        )
        preferred = (
            self.taskdict.preferred_host(task) if self.taskdict else None
        )
        if preferred is not None and preferred != original.hostname:
            request: ResourceRequest = HitResourceRequest(
                priority=priority,
                capability=self.container_capability,
                resource_name=preferred,
                task=task,
                speculative=True,
                avoid_host=original.hostname,
            )
        else:
            request = ResourceRequest(
                priority=priority,
                capability=self.container_capability,
                resource_name=ANY_HOST,
                task=task,
                speculative=True,
                avoid_host=original.hostname,
            )
        grant = self.rm.allocate(self.app_id, [request])[0]
        self.backups[key] = grant
        return grant

    def commit_attempt(self, task: TaskRef, winner: GrantedContainer) -> None:
        """First finisher wins: keep ``winner``'s grant, kill the loser.

        ``winner`` must be one of the task's live attempts.  After the
        commit the surviving grant is recorded as *the* attempt (so
        :meth:`release_all` and shuffle consumers see a single container per
        task) and the losing container is preempted at its NodeManager.
        """
        key = str(task)
        original = self.granted.get(key)
        backup = self.backups.pop(key, None)
        if original is None:
            raise KeyError(f"no running attempt for task {key}")
        if winner.container_id == original.container_id:
            loser = backup
        elif backup is not None and winner.container_id == backup.container_id:
            self.granted[key] = backup
            self.rm.promote(backup)
            loser = original
        else:
            raise ValueError(
                f"container {winner.container_id} is not an attempt of {key}"
            )
        if loser is not None:
            self.rm.kill(loser)

    def release_all(self) -> None:
        for grant in self.granted.values():
            self.rm.release(grant)
        for grant in self.backups.values():
            self.rm.release(grant)
        self.granted.clear()
        self.backups.clear()
