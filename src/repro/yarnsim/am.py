"""ApplicationMaster: per-job request generation (Section 6.2-6.3).

The AM turns a job's task list into resource requests.  With a
:class:`~repro.yarnsim.topologyaware.TopologyAwareTaskDict` attached, it
emits :class:`~repro.yarnsim.request.HitResourceRequest` objects whose
resource-name is each task's preferred host (the paper's online phase);
without one, it emits plain wildcard requests (stock behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.container import TaskKind, TaskRef
from ..cluster.resources import Resources
from ..mapreduce.job import JobSpec
from .request import ANY_HOST, HitResourceRequest, ResourceRequest
from .rm import GrantedContainer, ResourceManager
from .topologyaware import TopologyAwareTaskDict

__all__ = ["ApplicationMaster"]

#: YARN priorities: maps before reduces (lower value = higher priority).
_MAP_PRIORITY = 5
_REDUCE_PRIORITY = 10


@dataclass
class ApplicationMaster:
    """Drives one job's container acquisition against a ResourceManager."""

    rm: ResourceManager
    job: JobSpec
    container_capability: Resources = field(
        default_factory=lambda: Resources(1.0, 0.0)
    )
    taskdict: TopologyAwareTaskDict | None = None
    app_id: int = -1
    granted: dict[str, GrantedContainer] = field(default_factory=dict)

    def register(self) -> int:
        self.app_id = self.rm.register_application(self.job.name)
        return self.app_id

    # --------------------------------------------------------------- requests
    def build_requests(self) -> list[ResourceRequest]:
        """One request per task, maps first (YARN priority order)."""
        requests: list[ResourceRequest] = []
        for kind, count, priority in (
            (TaskKind.MAP, self.job.num_maps, _MAP_PRIORITY),
            (TaskKind.REDUCE, self.job.num_reduces, _REDUCE_PRIORITY),
        ):
            for index in range(count):
                task = TaskRef(self.job.job_id, kind, index)
                requests.append(self._request_for(task, priority))
        return requests

    def _request_for(self, task: TaskRef, priority: int) -> ResourceRequest:
        preferred = (
            self.taskdict.preferred_host(task) if self.taskdict else None
        )
        if preferred is not None:
            return HitResourceRequest(
                priority=priority,
                capability=self.container_capability,
                resource_name=preferred,
                task=task,
            )
        return ResourceRequest(
            priority=priority,
            capability=self.container_capability,
            resource_name=ANY_HOST,
            task=task,
        )

    # ----------------------------------------------------------------- driving
    def acquire_containers(self) -> dict[str, GrantedContainer]:
        """Register (if needed), request, and record the granted containers.

        Returns ``{str(task): granted}`` for every task of the job.
        """
        if self.app_id < 0:
            self.register()
        requests = self.build_requests()
        granted = self.rm.allocate(self.app_id, requests)
        for request, grant in zip(requests, granted):
            assert request.task is not None
            self.granted[str(request.task)] = grant
        return dict(self.granted)

    def release_all(self) -> None:
        for grant in self.granted.values():
            self.rm.release(grant)
        self.granted.clear()
