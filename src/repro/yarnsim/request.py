"""ResourceRequest and Hit-ResourceRequest (Section 6.2).

In YARN, an ApplicationMaster asks the ResourceManager for containers via
``ResourceRequest`` objects; the request's *resource-name* scopes where the
container may land (``*`` = anywhere, a hostname = that node, a rack name =
that rack).  The paper's ``Hit-ResourceRequest`` "specif[ies] resource-name
as the preferred host for the specific task", with the preferred host read
from the ``mapred.job.topologyaware.taskdict`` class file that the offline
Hit optimisation populates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.container import TaskRef
from ..cluster.resources import Resources

__all__ = ["ANY_HOST", "ResourceRequest", "HitResourceRequest"]

#: YARN's wildcard resource-name: the scheduler may pick any node.
ANY_HOST = "*"


@dataclass(frozen=True)
class ResourceRequest:
    """A request for one or more identical containers.

    ``resource_name`` is a hostname, a rack name, or :data:`ANY_HOST`;
    ``relax_locality`` allows the scheduler to fall back to other nodes when
    the preferred one has no headroom (YARN's default behaviour).
    """

    priority: int
    capability: Resources
    num_containers: int = 1
    resource_name: str = ANY_HOST
    relax_locality: bool = True
    task: TaskRef | None = None
    #: Marks a speculative-execution backup attempt.  Speculative requests
    #: compete at the same priority as the original attempt (YARN does not
    #: distinguish them at grant time) but carry the flag so the RM's grant
    #: accounting and tests can tell the two apart.
    speculative: bool = False
    #: A host the grant must *not* land on — the straggling attempt's node.
    #: A backup co-located with the straggler would share its slowdown.
    avoid_host: str | None = None

    def __post_init__(self) -> None:
        if self.num_containers < 1:
            raise ValueError("num_containers must be >= 1")
        if self.priority < 0:
            raise ValueError("priority must be >= 0")
        if self.avoid_host is not None and self.avoid_host == self.resource_name:
            raise ValueError(
                f"request prefers and avoids the same host "
                f"{self.resource_name!r}"
            )

    @property
    def is_anywhere(self) -> bool:
        return self.resource_name == ANY_HOST


@dataclass(frozen=True)
class HitResourceRequest(ResourceRequest):
    """A topology-aware request: the preferred host comes from the Hit
    optimisation's task dictionary (Section 6.2).

    Semantically a :class:`ResourceRequest` whose ``resource_name`` is always
    a concrete hostname; the separate type lets the ResourceManager (and
    tests) distinguish requests that carry placement intent.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resource_name == ANY_HOST:
            raise ValueError(
                "HitResourceRequest requires a concrete preferred host"
            )
