"""``mapred.job.topologyaware`` — the offline/online bridge (Section 6).

The paper's implementation splits Hit-Scheduler into an offline phase (profile
each application's shuffle data rate, capture the topology) and an online
phase where a new class ``mapred.job.topologyaware`` carries the optimised
task placement into the YARN plumbing.  :class:`TopologyAwareTaskDict` is
that class file: a mapping from task to preferred hostname, built from a
:class:`~repro.core.hit.HitResult` (or any container->server assignment) and
consumed when emitting :class:`~repro.yarnsim.request.HitResourceRequest`
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.container import TaskRef
from ..cluster.state import ClusterState
from ..topology.base import Topology

__all__ = ["TopologyAwareTaskDict"]


@dataclass
class TopologyAwareTaskDict:
    """Preferred host per task, keyed by the task's string form."""

    _preferred: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_placement(
        cls,
        cluster: ClusterState,
        topology: Topology,
        placement: dict[int, int | None],
    ) -> "TopologyAwareTaskDict":
        """Build from a container->server placement snapshot."""
        table: dict[str, str] = {}
        for cid, sid in placement.items():
            if sid is None:
                continue
            task = cluster.container(cid).task
            if task is None:
                continue
            table[str(task)] = topology.server(sid).name
        return cls(_preferred=table)

    def preferred_host(self, task: TaskRef) -> str | None:
        return self._preferred.get(str(task))

    def set_preferred_host(self, task: TaskRef, hostname: str) -> None:
        self._preferred[str(task)] = hostname

    def __len__(self) -> int:
        return len(self._preferred)

    def __contains__(self, task: TaskRef) -> bool:
        return str(task) in self._preferred
