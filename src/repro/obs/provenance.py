"""Decision-provenance plane: one structured record per runtime choice.

Every consequential decision the simulator makes — where a container was
placed (and what the alternatives were), which path a flow was routed on
(and why), whether a job was admitted, why a backup attempt was or was not
launched, how a fault was absorbed — is captured as one
:class:`DecisionRecord` carrying sim-time, job/task/attempt identity, a
stable reason code from :data:`REASON_CODES`, and a monotone sequence
number.

The plane is opt-in and **provably non-perturbing**: every hook is a pure
read of simulator state, consumes no randomness, and changes no control
flow, so a provenance-on run is byte-identical to a provenance-off run
(enforced by ``tests/simulator/test_provenance.py`` across the plain,
faults, faults+speculation and online arms).

Memory is bounded by construction: records live in a fixed-size ring
buffer (``collections.deque(maxlen=ring_size)``) and are *incrementally*
spilled to a JSONL sink as they are emitted — there is never a dense
in-memory list of all decisions.  A running SHA-256 over the spilled
lines gives a :meth:`ProvenanceRecorder.fingerprint` that chaos/online
violation reports attach so failed trials ship their own explanation.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

__all__ = [
    "DECISION_KINDS",
    "REASON_CODES",
    "DecisionRecord",
    "ProvenanceConfig",
    "ProvenanceRecorder",
    "decision_digest",
    "explain_task",
    "flow_label",
    "format_record",
    "load_decisions",
    "summarize_decisions",
    "task_label",
]


#: Every decision kind the plane can emit, and what it covers.
DECISION_KINDS: dict[str, str] = {
    "admission": "arrival-plane verdicts and job starts",
    "placement": "container-to-server choices (Alg-1/Alg-2 and baselines)",
    "route": "per-flow path installation",
    "reroute": "fault-time path repair for in-flight flows",
    "park": "flows suspended / resumed for lack of a live path",
    "retry": "failed-attempt rescheduling",
    "speculation": "backup launch / kill / settle decisions",
    "fault": "injected fault and recovery events",
}

#: Reason-code catalogue — the closed vocabulary `emit` accepts.  Keeping
#: this a hard whitelist means ``repro explain --summary`` can never meet a
#: code the docs do not describe.
REASON_CODES: dict[str, str] = {
    # --- admission -------------------------------------------------------
    "accepted": "job admitted to the arrival queue",
    "queue-full": "rejected: per-tenant queue at its bound",
    "load-shed": "rejected: cluster occupancy above the shed threshold",
    "throttled": "rejected: tenant over its admission rate",
    "batch-fifo": "batch run without an admission controller (always admitted)",
    "started": "job dequeued and its first wave placed",
    # --- placement -------------------------------------------------------
    "hit-wave": "joint Alg-1/Alg-2 wave optimisation summary (job-level)",
    "alg2-stable-match": "container placed by deferred-acceptance matching",
    "node-local": "map placed on a host holding its HDFS replica",
    "rack-local": "map placed in a rack holding its HDFS replica",
    "static-min-cost": "map placed on the cheapest server by static cost",
    "zero-cost": "reduce short-circuited to a zero-shuffle-cost server",
    "inverse-cost-sample": "reduce sampled with probability ~ cost^-beta",
    "round-robin": "placed by the capacity scheduler's rotating cursor",
    "rack-pack": "placed by greedy rack set-cover",
    "random": "placed uniformly at random over feasible servers",
    # --- route -----------------------------------------------------------
    "policy-optimal": "Alg-1 capacity-enforced optimal path installed",
    "policy-uncapacitated": "capacities pruned every path; uncapacitated fallback",
    "ecmp-hash": "equal-cost path drawn by the ECMP hash stream",
    "static-shortest": "static shortest path (network-oblivious baseline)",
    "no-path": "no live path existed; flow parked at launch",
    # --- faults / repair -------------------------------------------------
    "server-fail": "server failure injected",
    "server-recover": "server recovery injected",
    "switch-fail": "switch failure injected",
    "switch-recover": "switch recovery injected",
    "link-fail": "link failure injected",
    "link-recover": "link recovery injected",
    "link-degrade": "fail-slow link capacity scaling injected",
    "task-slowdown": "straggler slowdown injected",
    "switch-fail-reroute": "in-flight flow repaired after a switch failure",
    "link-fail-reroute": "in-flight flow repaired after a link failure",
    "flow-parked": "in-flight flow suspended: no live path remained",
    "flow-resumed": "parked flow resumed on a recovered path",
    # --- retry -----------------------------------------------------------
    "retry-scheduled": "failed attempt queued for retry with backoff",
    "retry-placed": "retried attempt placed on a healthy server",
    "retry-blocked": "retry deferred: no healthy server had capacity",
    # --- speculation -----------------------------------------------------
    "quota-denied": "backup suppressed: per-job speculation quota reached",
    "no-slot": "backup suppressed: no healthy server had a free slot",
    "too-late": "backup suppressed: it could not beat the primary",
    "backup-launched": "backup attempt launched for a straggler",
    "backup-killed": "losing attempt of a speculation pair killed",
    "spec-win": "backup finished first; primary cancelled",
    "spec-loss": "primary finished first; backup cancelled",
}


def task_label(kind: object, index: int) -> str:
    """Canonical task identity: map ``i`` -> ``"m<i>"``, reduce ``j`` -> ``"r<j>"``."""
    name = str(getattr(kind, "name", kind)).upper()
    return ("m" if name.startswith("M") else "r") + str(int(index))


def flow_label(map_index: int, reduce_index: int) -> str:
    """Canonical shuffle-flow identity: ``"m<i>->r<j>"``."""
    return f"m{int(map_index)}->r{int(reduce_index)}"


def _jsonable(value: Any) -> Any:
    """Coerce detail payloads (numpy scalars, tuples, sets) to plain JSON."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One audited runtime choice."""

    #: Monotone per-run sequence number (total order over decisions).
    seq: int
    #: Simulated time the decision was taken at.
    t: float
    #: One of :data:`DECISION_KINDS`.
    kind: str
    #: Scheduler the run was driven by (record streams are per scheduler).
    scheduler: str
    #: One of :data:`REASON_CODES`.
    reason: str
    job: int | None = None
    #: ``"m3"`` / ``"r1"`` / ``"m3->r1"`` (flow) / ``None`` for job-level.
    task: str | None = None
    attempt: int | None = None
    #: Free-form JSON-safe payload: candidates, ranks, costs, queue state…
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "scheduler": self.scheduler,
            "reason": self.reason,
            "job": self.job,
            "task": self.task,
            "attempt": self.attempt,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "DecisionRecord":
        return cls(
            seq=int(body["seq"]),
            t=float(body["t"]),
            kind=str(body["kind"]),
            scheduler=str(body["scheduler"]),
            reason=str(body["reason"]),
            job=None if body.get("job") is None else int(body["job"]),
            task=body.get("task"),
            attempt=(
                None if body.get("attempt") is None else int(body["attempt"])
            ),
            detail=dict(body.get("detail") or {}),
        )


@dataclass(frozen=True, slots=True)
class ProvenanceConfig:
    """Opt-in switch carried on ``SimulationConfig``.

    ``path`` is the incremental JSONL spill sink (``None`` keeps the ring
    only — fine for tests, useless for ``repro explain`` which reads the
    file).  ``ring_size`` bounds in-process memory regardless of run
    length.
    """

    path: str | None = None
    ring_size: int = 4096


class ProvenanceRecorder:
    """Memory-bounded sink for :class:`DecisionRecord` streams.

    The engine stamps :attr:`now` with the event time before each
    dispatch, so hooks deep inside schedulers never need a clock.  Every
    ``emit`` appends to a fixed ring, streams one JSONL line to the spill
    sink, and folds the line into a running SHA-256 — nothing here grows
    with run length except the file on disk.
    """

    def __init__(
        self,
        scheduler: str,
        *,
        ring_size: int = 4096,
        path: str | Path | None = None,
    ) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.scheduler = scheduler
        self.ring_size = int(ring_size)
        self.ring: deque[DecisionRecord] = deque(maxlen=self.ring_size)
        self.now: float = 0.0
        self.emitted = 0
        self.counts: dict[str, int] = {}
        self.path = None if path is None else Path(path)
        self._hash = hashlib.sha256()
        self._sink: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self.path.open("w", encoding="utf-8")

    @classmethod
    def from_config(
        cls, config: ProvenanceConfig, scheduler: str
    ) -> "ProvenanceRecorder":
        return cls(scheduler, ring_size=config.ring_size, path=config.path)

    # ------------------------------------------------------------- emission
    def emit(
        self,
        kind: str,
        reason: str,
        *,
        job: int | None = None,
        task: str | None = None,
        attempt: int | None = None,
        **detail: Any,
    ) -> DecisionRecord:
        """Record one decision.  Pure append: no simulator state is touched."""
        if kind not in DECISION_KINDS:
            raise ValueError(f"unknown decision kind: {kind!r}")
        if reason not in REASON_CODES:
            raise ValueError(f"unknown reason code: {reason!r}")
        record = DecisionRecord(
            seq=self.emitted,
            t=float(self.now),
            kind=kind,
            scheduler=self.scheduler,
            reason=reason,
            job=None if job is None else int(job),
            task=task,
            attempt=None if attempt is None else int(attempt),
            detail={k: _jsonable(v) for k, v in detail.items()},
        )
        self.emitted += 1
        key = f"{kind}:{reason}"
        self.counts[key] = self.counts.get(key, 0) + 1
        self.ring.append(record)
        line = json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        if self._sink is not None:
            self._sink.write(line + "\n")
        return record

    # -------------------------------------------------------------- queries
    def records(self) -> list[DecisionRecord]:
        """The ring's current contents (at most ``ring_size`` records)."""
        return list(self.ring)

    def counters(self) -> dict[str, int]:
        """``kind:reason`` -> count, sorted — stable across identical runs."""
        return dict(sorted(self.counts.items()))

    def fingerprint(self) -> str:
        """SHA-256 over every emitted record, in order — the trial's own
        explanation digest, attachable to violation reports."""
        return self._hash.hexdigest()

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            self._sink.close()
            self._sink = None


def decision_digest(recorder: "ProvenanceRecorder | None") -> dict[str, Any]:
    """Compact decision-provenance attachment for violation reports.

    Chaos/online harnesses rerun a failed trial with provenance enabled
    (faithful, by the byte-identity contract) and ship this digest so the
    report carries its own explanation: the running fingerprint, the total
    decision count, and the ``kind:reason`` tallies.
    """
    if recorder is None:
        return {}
    return {
        "fingerprint": recorder.fingerprint(),
        "decisions": recorder.emitted,
        "counters": recorder.counters(),
    }


# ------------------------------------------------------------------ explain
def load_decisions(path: str | Path) -> list[DecisionRecord]:
    """Read a spilled decision log back into records."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(DecisionRecord.from_dict(json.loads(line)))
    return records


def _task_components(label: str | None) -> tuple[str, ...]:
    if not label:
        return ()
    return tuple(label.split("->"))


def explain_task(
    records: Iterable[DecisionRecord], job: int, task: str | None = None
) -> list[DecisionRecord]:
    """Reconstruct the decision chain for one job (optionally one task).

    A record belongs to the chain when it names the job and either carries
    no task identity (job-level: admission verdicts, wave summaries) or
    names the task directly — flow records ``"m3->r1"`` match both of
    their endpoints.
    """
    chain = []
    for record in records:
        if record.job != job:
            continue
        if task is not None:
            parts = _task_components(record.task)
            if parts and task not in parts:
                continue
        chain.append(record)
    chain.sort(key=lambda r: r.seq)
    return chain


def format_record(record: DecisionRecord) -> str:
    """One-line human-readable rendering (the ``repro explain`` format).

    Deterministic — detail keys are sorted — so golden-output tests can
    compare rendered chains verbatim.
    """
    parts = [f"#{record.seq}", f"t={record.t:.6f}", record.kind, record.reason]
    if record.job is not None:
        parts.append(f"job={record.job}")
    if record.task:
        parts.append(f"task={record.task}")
    if record.attempt is not None:
        parts.append(f"attempt={record.attempt}")
    if record.detail:
        parts.append(
            json.dumps(record.detail, sort_keys=True, separators=(",", ":"))
        )
    return " ".join(parts)


def summarize_decisions(
    records: Iterable[DecisionRecord],
) -> dict[str, dict[str, int]]:
    """Aggregate reason codes per scheduler: ``{scheduler: {kind:reason: n}}``."""
    out: dict[str, dict[str, int]] = {}
    for record in records:
        bucket = out.setdefault(record.scheduler, {})
        key = f"{record.kind}:{record.reason}"
        bucket[key] = bucket.get(key, 0) + 1
    return {name: dict(sorted(v.items())) for name, v in sorted(out.items())}
