"""Runtime invariant checking for the Hit-Scheduler reproduction.

The paper states correctness properties the algorithms must maintain but the
seed code never enforced at runtime; :class:`InvariantChecker` makes them
machine-checkable (paper references in parentheses):

* **server-capacity** — placed containers never oversubscribe a server's
  resource vector ``q_j`` (Eq 3, fourth constraint), and the cluster's cached
  usage equals the per-container re-derivation.
* **switch-capacity** — the aggregate rate of *capacity-negotiated* policies
  through a switch never exceeds its capacity (Eq 3, fifth constraint /
  Eq 4).  Policies installed with capacity enforcement waived (the static /
  ECMP baselines and the saturation fallback) are exempt by design — the
  paper's constraint binds the optimiser, not the baselines it out-performs.
* **switch-load-consistency** — the controller's incremental load accounting
  equals the load recomputed from scratch off the installed policies (no
  float drift, no stale entries).
* **policy-satisfaction** — every installed policy is satisfied by the
  topology: switch types match the requirement list in order (Eq 3, sixth
  constraint) and consecutive path nodes are physically linked.
* **matching-stability** — Algorithm 2's output admits no blocking pair
  (Theorem 2).
* **flow-conservation** — in the fluid network, every active flow carries
  one non-negative rate along its whole path, remaining volume never goes
  negative, and per-resource aggregate rates respect link/switch capacities
  (the max-min allocation is feasible).
* **path-liveness** — while faults are live, no active flow's path touches a
  currently-failed switch or a dead link (failed, or degraded to a capacity
  factor of 0.0) — the routing half of the survivability contract
  (``docs/fault_model.md``).
* **quiescence** — when a simulation drains, switch loads return to exactly
  their base values and no flow or policy is left behind.
* **one-committed-attempt** / **no-killed-flow** — the speculative-execution
  commit protocol (``repro.speculation``): a map output commits at most once
  while a previous commit is live, and every shuffle flow reads from the
  committed output's server, never from a killed attempt.
* **online-accounting** — the overload contract (``docs/workload.md``):
  under the online workload plane, every submitted job is exactly one of
  completed / still-queued / rejected-with-reason (no silent drops), every
  admitted job either started or is still queued, and the per-tenant queue
  length never exceeded the configured bound.

The checker is deliberately dependency-light: every check takes the object
it inspects, so it can be used standalone in tests or installed process-wide
via :mod:`repro.obs.runtime` and driven by the opt-in hooks in
``core/policy.py``, ``core/matching.py``, ``core/hit.py`` and
``simulator/engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..cluster.state import ClusterState
    from ..core.matching import MatchingResult
    from ..core.policy import PolicyController
    from ..core.preference import PreferenceMatrix
    from ..core.taa import TAAInstance
    from ..faults.injector import FaultInjector
    from ..simulator.network import FlowNetwork

__all__ = ["InvariantViolation", "InvariantError", "InvariantChecker"]


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach, with enough context to debug it."""

    invariant: str
    detail: str
    where: str = ""

    def __str__(self) -> str:
        site = f" @ {self.where}" if self.where else ""
        return f"[{self.invariant}{site}] {self.detail}"


class InvariantError(AssertionError):
    """Raised in ``raise`` mode; carries the full violation list."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        preview = "; ".join(str(v) for v in violations[:5])
        super().__init__(
            f"{len(violations)} invariant violation(s): {preview}"
        )


class InvariantChecker:
    """Runtime verifier for the paper's correctness invariants.

    ``mode='raise'`` aborts on the first failing check (tests, CI smoke
    runs); ``mode='collect'`` accumulates violations for a post-run report
    (the CLI's ``--check-invariants``).  ``tolerance`` absorbs float noise
    in rate/capacity comparisons.
    """

    def __init__(self, mode: str = "raise", tolerance: float = 1e-6) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.tolerance = tolerance
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0

    # ------------------------------------------------------------- reporting
    def _emit(
        self, found: list[InvariantViolation]
    ) -> list[InvariantViolation]:
        self.checks_run += 1
        if found:
            self.violations.extend(found)
            if self.mode == "raise":
                raise InvariantError(found)
        return found

    def summary(self) -> dict[str, Any]:
        """Per-invariant violation counts plus totals, for reports."""
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return {
            "checks_run": self.checks_run,
            "violations": len(self.violations),
            "by_invariant": dict(sorted(counts.items())),
        }

    def reset(self) -> None:
        self.violations.clear()
        self.checks_run = 0

    # ------------------------------------------------------- individual checks
    def check_server_capacity(
        self, cluster: "ClusterState", where: str = ""
    ) -> list[InvariantViolation]:
        """Eq 3 (4th constraint): per-server usage ≤ capacity, caches honest."""
        found: list[InvariantViolation] = []
        for sid in cluster.server_ids:
            total = None
            for cid in cluster.hosted_on(sid):
                c = cluster.container(cid)
                if c.server_id != sid:
                    found.append(InvariantViolation(
                        "server-capacity",
                        f"container {cid} listed on server {sid} but "
                        f"points at {c.server_id}",
                        where,
                    ))
                total = c.demand if total is None else total + c.demand
            used = cluster.used(sid)
            if total is not None and total.as_tuple() != used.as_tuple():
                found.append(InvariantViolation(
                    "server-capacity",
                    f"server {sid} usage cache {used.as_tuple()} != "
                    f"re-derived {total.as_tuple()}",
                    where,
                ))
            if not used.fits_in(cluster.capacity(sid)):
                found.append(InvariantViolation(
                    "server-capacity",
                    f"server {sid} used {used.as_tuple()} exceeds capacity "
                    f"{cluster.capacity(sid).as_tuple()}",
                    where,
                ))
        return self._emit(found)

    def check_switch_capacity(
        self,
        controller: "PolicyController",
        where: str = "",
        switches: Iterable[int] | None = None,
    ) -> list[InvariantViolation]:
        """Eq 4: capacity-negotiated load on each switch ≤ its capacity.

        ``switches`` restricts the scan (the per-mutation hook checks only
        the switches a policy touches); by default every switch is checked.
        """
        found: list[InvariantViolation] = []
        topo = controller.topology
        ids = topo.switch_ids if switches is None else switches
        for w in ids:
            load = controller.capacitated_load(w)
            capacity = topo.switch(w).capacity
            if load > capacity + self.tolerance:
                found.append(InvariantViolation(
                    "switch-capacity",
                    f"switch {w}: capacitated load {load:g} > capacity "
                    f"{capacity:g}",
                    where,
                ))
        return self._emit(found)

    def check_switch_load_consistency(
        self, controller: "PolicyController", where: str = ""
    ) -> list[InvariantViolation]:
        """Incremental load accounting == recompute-from-policies."""
        found: list[InvariantViolation] = []
        expected = controller.recomputed_loads()
        for w in controller.topology.switch_ids:
            tracked = controller.load(w) - controller.base_load(w)
            if abs(tracked - expected[w]) > self.tolerance:
                found.append(InvariantViolation(
                    "switch-load-consistency",
                    f"switch {w}: tracked load {tracked!r} != recomputed "
                    f"{expected[w]!r}",
                    where,
                ))
            if tracked < -self.tolerance:
                found.append(InvariantViolation(
                    "switch-load-consistency",
                    f"switch {w}: negative tracked load {tracked!r}",
                    where,
                ))
        return self._emit(found)

    def check_policy_satisfaction(
        self, controller: "PolicyController", where: str = ""
    ) -> list[InvariantViolation]:
        """Eq 3 (6th constraint): installed policies satisfied by topology."""
        found: list[InvariantViolation] = []
        topo = controller.topology
        for fid, policy in controller.policies().items():
            if not policy.is_satisfied_by(topo):
                found.append(InvariantViolation(
                    "policy-satisfaction",
                    f"flow {fid}: switch types diverge from requirement list",
                    where,
                ))
            expected_switches = tuple(
                n for n in policy.path if topo.is_switch(n)
            )
            if expected_switches != policy.switch_list:
                found.append(InvariantViolation(
                    "policy-satisfaction",
                    f"flow {fid}: switch_list {policy.switch_list} does not "
                    f"match path switches {expected_switches}",
                    where,
                ))
            for a, b in zip(policy.path, policy.path[1:]):
                if not topo.has_link(a, b):
                    found.append(InvariantViolation(
                        "policy-satisfaction",
                        f"flow {fid}: hop {a}->{b} is not a physical link",
                        where,
                    ))
                    break
        return self._emit(found)

    def check_matching_stability(
        self,
        result: "MatchingResult",
        preferences: "PreferenceMatrix",
        cluster: "ClusterState",
        where: str = "",
    ) -> list[InvariantViolation]:
        """Theorem 2: Algorithm 2's output admits no blocking pair."""
        from ..core.matching import find_blocking_pairs

        pairs = find_blocking_pairs(result, preferences, cluster)
        found = [
            InvariantViolation(
                "matching-stability",
                f"blocking pair: container {c} and server {s}",
                where,
            )
            for c, s in pairs
        ]
        return self._emit(found)

    def check_flow_conservation(
        self, network: "FlowNetwork", where: str = ""
    ) -> list[InvariantViolation]:
        """Fluid-network feasibility: per-flow sanity + resource capacities."""
        found: list[InvariantViolation] = []
        network.ensure_rates()
        topo = network.topology
        usage: dict[int, float] = {}
        for flow in network.active_flows:
            if flow.rate < 0:
                found.append(InvariantViolation(
                    "flow-conservation",
                    f"flow {flow.flow_id}: negative rate {flow.rate!r}",
                    where,
                ))
            if flow.remaining < -self.tolerance:
                found.append(InvariantViolation(
                    "flow-conservation",
                    f"flow {flow.flow_id}: negative remaining "
                    f"{flow.remaining!r}",
                    where,
                ))
            for a, b in zip(flow.path, flow.path[1:]):
                if not topo.has_link(a, b):
                    found.append(InvariantViolation(
                        "flow-conservation",
                        f"flow {flow.flow_id}: hop {a}->{b} is not a "
                        f"physical link",
                        where,
                    ))
                    break
            switches = sum(1 for n in flow.path if topo.is_switch(n))
            if switches != flow.num_switches:
                found.append(InvariantViolation(
                    "flow-conservation",
                    f"flow {flow.flow_id}: num_switches {flow.num_switches} "
                    f"!= path switch count {switches}",
                    where,
                ))
            for res in flow.resources:
                usage[res] = usage.get(res, 0.0) + flow.rate
        caps = network.resource_capacities
        for res, used in usage.items():
            cap = float(caps[res])
            if used > cap + self.tolerance * max(1.0, cap):
                found.append(InvariantViolation(
                    "flow-conservation",
                    f"resource {res}: aggregate rate {used:g} > capacity "
                    f"{cap:g}",
                    where,
                ))
        return self._emit(found)

    def check_path_liveness(
        self,
        network: "FlowNetwork",
        injector: "FaultInjector",
        where: str = "",
    ) -> list[InvariantViolation]:
        """No active flow may traverse a failed switch or a dead link.

        The routing half of the survivability contract: the engine's
        recovery layer must have rerouted or parked every flow touching a
        dead element before simulated time moves again.
        """
        found: list[InvariantViolation] = []
        failed = injector.failed_switches
        dead = injector.dead_links
        if not failed and not dead:
            return self._emit(found)
        for flow in network.active_flows:
            for node in flow.path:
                if node in failed:
                    found.append(InvariantViolation(
                        "path-liveness",
                        f"flow {flow.flow_id}: path {flow.path} traverses "
                        f"failed switch {node}",
                        where,
                    ))
                    break
            for a, b in zip(flow.path, flow.path[1:]):
                if ((a, b) if a <= b else (b, a)) in dead:
                    found.append(InvariantViolation(
                        "path-liveness",
                        f"flow {flow.flow_id}: path {flow.path} traverses "
                        f"dead link ({a}, {b})",
                        where,
                    ))
                    break
        return self._emit(found)

    def check_quiescent(
        self,
        controller: "PolicyController",
        network: "FlowNetwork | None" = None,
        where: str = "",
    ) -> list[InvariantViolation]:
        """After a drain: loads exactly at base, nothing left installed."""
        found: list[InvariantViolation] = []
        if network is not None and network.active_flows:
            found.append(InvariantViolation(
                "quiescence",
                f"{len(network.active_flows)} flows still active",
                where,
            ))
        if controller.policies():
            found.append(InvariantViolation(
                "quiescence",
                f"{len(controller.policies())} policies still installed",
                where,
            ))
        for w in controller.topology.switch_ids:
            residual_load = controller.load(w) - controller.base_load(w)
            if residual_load != 0.0:
                found.append(InvariantViolation(
                    "quiescence",
                    f"switch {w}: load {residual_load!r} above base after "
                    f"drain (float drift or stale entry)",
                    where,
                ))
        return self._emit(found)

    def check_speculation(
        self, speculation, where: str = ""
    ) -> list[InvariantViolation]:
        """Drain the speculation ledgers' recorded protocol breaches.

        The two invariants — *one-committed-attempt* (a map output commits
        at most once while a previous commit is live) and *no-killed-flow*
        (shuffle flows read the committed output's server, never a killed
        attempt's) — are detected at the moment of breach by
        :class:`~repro.speculation.runtime.SpeculationState`; this check
        converts the accumulated records into violations at the engine's
        drain checkpoints and at run end.
        """
        found = [
            InvariantViolation(invariant, detail, where)
            for invariant, detail in speculation.drain_violations()
        ]
        return self._emit(found)

    def check_online_accounting(
        self, admission, metrics, where: str = ""
    ) -> list[InvariantViolation]:
        """The overload contract's accounting identity, at end of run.

        Per tenant: ``submitted == admitted + rejected`` (the controller
        decided every arrival), ``admitted == started + queued`` (nothing
        vanished between the queue and the engine), completions never
        exceed starts, and with a configured ``queue_bound`` the tenant's
        peak queue length respected it.  Takes the engine's
        :class:`~repro.workload.admission.AdmissionController` and its
        :class:`~repro.simulator.metrics.MetricsCollector`.
        """
        found: list[InvariantViolation] = []
        counters = admission.counters()
        completed_by_tenant: dict[int, int] = {}
        for job in metrics.jobs:
            completed_by_tenant[job.tenant] = (
                completed_by_tenant.get(job.tenant, 0) + 1
            )
        tenant_ids = sorted(
            {
                int(key.split(".")[2])
                for key in counters
                if key.startswith("admission.tenant.")
            }
        )
        for tenant in tenant_ids:
            prefix = f"admission.tenant.{tenant}"
            submitted = counters[f"{prefix}.submitted"]
            admitted = counters[f"{prefix}.admitted"]
            rejected = counters[f"{prefix}.rejected"]
            started = counters[f"{prefix}.started"]
            queued = counters[f"{prefix}.queued"]
            if submitted != admitted + rejected:
                found.append(InvariantViolation(
                    "online-accounting",
                    f"tenant {tenant}: submitted {submitted} != admitted "
                    f"{admitted} + rejected {rejected}",
                    where,
                ))
            if admitted != started + queued:
                found.append(InvariantViolation(
                    "online-accounting",
                    f"tenant {tenant}: admitted {admitted} != started "
                    f"{started} + queued {queued}",
                    where,
                ))
            completed = completed_by_tenant.get(tenant, 0)
            if completed > started:
                found.append(InvariantViolation(
                    "online-accounting",
                    f"tenant {tenant}: {completed} completions exceed "
                    f"{started} starts",
                    where,
                ))
            bound = admission.config.queue_bound
            if (
                admission.config.policy == "queue-bound"
                and bound is not None
                and counters[f"{prefix}.max_queue_len"] > bound
            ):
                found.append(InvariantViolation(
                    "online-accounting",
                    f"tenant {tenant}: peak queue length "
                    f"{counters[f'{prefix}.max_queue_len']} exceeds "
                    f"configured bound {bound}",
                    where,
                ))
        rejects_recorded = len(metrics.rejections)
        rejects_counted = counters["admission.rejected"]
        if rejects_recorded != rejects_counted:
            found.append(InvariantViolation(
                "online-accounting",
                f"{rejects_counted} rejections counted but "
                f"{rejects_recorded} rejection records kept",
                where,
            ))
        return self._emit(found)

    # --------------------------------------------------------- composite view
    def check_controller(
        self, controller: "PolicyController", where: str = ""
    ) -> list[InvariantViolation]:
        """All policy-side invariants of one controller."""
        found: list[InvariantViolation] = []
        found += self.check_switch_capacity(controller, where)
        found += self.check_switch_load_consistency(controller, where)
        found += self.check_policy_satisfaction(controller, where)
        return found

    def check_taa(
        self, taa: "TAAInstance", where: str = ""
    ) -> list[InvariantViolation]:
        """Compute- and network-side invariants of a live TAA instance."""
        found: list[InvariantViolation] = []
        found += self.check_server_capacity(taa.cluster, where)
        found += self.check_controller(taa.controller, where)
        return found
