"""Run exports: Chrome trace-event / Perfetto JSON and an HTML summary.

Turns one simulation run — the end-of-run records
(:class:`~repro.simulator.metrics.MetricsCollector`), the optional
simulated-time telemetry (:class:`~repro.obs.timeline.TimelineRecorder`)
and the critical-path attribution — into artefacts a human can open:

* :func:`build_chrome_trace` / :func:`save_chrome_trace` — the Trace Event
  Format consumed by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Tracks: one process for jobs (tasks and the job
  span as nestable async events), one for servers, one for shuffle flows,
  and a telemetry process carrying counter tracks sampled from the
  timeline plus instant markers for fault/speculation occurrences.  One
  simulated time unit is exported as one second (``ts`` is microseconds).
* :func:`validate_chrome_trace` — structural schema check used by the test
  suite and the CI telemetry smoke step; returns a list of problems
  (empty = valid).
* :func:`render_html_report` / :func:`save_html_report` — a dependency-free
  single-file HTML report: per-scheduler metric tables (markdown style, so
  EXPERIMENTS.md entries can be copy-pasted straight out of the report),
  critical-path breakdowns, subsystem counters and inline-SVG gauge
  timelines.

Everything here is post-run and read-only: exports can never perturb a
simulation, they only serialise what was already recorded.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.critical_path import JobCriticalPath
    from ..simulator.metrics import MetricsCollector
    from .provenance import ProvenanceRecorder
    from .timeline import TimelineRecorder

__all__ = [
    "build_chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "render_html_report",
    "save_html_report",
]

#: Simulated time unit → trace ``ts`` microseconds (1 sim unit = 1 s).
TIME_SCALE_US = 1e6

#: Emit per-switch counter tracks only on fabrics at or below this many
#: switches; larger fabrics get the aggregate gauges only (trace size).
MAX_SWITCH_TRACKS = 24

_PID_JOBS = 1
_PID_SERVERS = 2
_PID_FLOWS = 3
_PID_TELEMETRY = 4
_PID_DECISIONS = 5


# ----------------------------------------------------------------- trace JSON
def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    if tid is None:
        return {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        }
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _async_pair(
    events: list[dict[str, Any]],
    *,
    pid: int,
    tid: int,
    cat: str,
    name: str,
    event_id: int,
    start: float,
    finish: float,
    args: dict[str, Any],
) -> None:
    """Nestable async begin/end pair (overlap-safe, unlike ``X`` slices)."""
    base = {"cat": cat, "name": name, "id": event_id, "pid": pid, "tid": tid}
    events.append({**base, "ph": "b", "ts": start * TIME_SCALE_US, "args": args})
    events.append({**base, "ph": "e", "ts": finish * TIME_SCALE_US, "args": {}})


def _counter(
    events: list[dict[str, Any]], t: float, name: str, value: float
) -> None:
    events.append(
        {
            "ph": "C",
            "name": name,
            "pid": _PID_TELEMETRY,
            "tid": 0,
            "ts": t * TIME_SCALE_US,
            "args": {"value": round(float(value), 6)},
        }
    )


def build_chrome_trace(
    metrics: "MetricsCollector",
    timeline: "TimelineRecorder | None" = None,
    scheduler: str = "run",
    provenance: "ProvenanceRecorder | None" = None,
) -> dict[str, Any]:
    """Assemble the trace-event JSON object for one run.

    With a ``provenance`` recorder, its buffered decision records become
    instant events on a dedicated "decisions" process — one thread per
    decision kind, ``args`` carrying the full record — so a Perfetto
    timeline shows *why* each placement/route/reroute happened right next
    to the task and flow slices it produced.  Only the in-memory ring is
    exported; a spilled long run keeps its tail (the JSONL spill file has
    everything).
    """
    events: list[dict[str, Any]] = []
    events.append(_meta(_PID_JOBS, f"jobs — {scheduler}"))
    events.append(_meta(_PID_SERVERS, "servers"))
    events.append(_meta(_PID_FLOWS, "shuffle flows"))
    events.append(_meta(_PID_TELEMETRY, "telemetry"))
    events.append(_meta(_PID_TELEMETRY, "gauges", tid=0))

    next_id = 1
    for job in metrics.jobs:
        events.append(_meta(_PID_JOBS, f"job {job.job_id} ({job.name})",
                            tid=job.job_id))
        events.append(_meta(_PID_FLOWS, f"job {job.job_id} flows",
                            tid=job.job_id))
        _async_pair(
            events,
            pid=_PID_JOBS,
            tid=job.job_id,
            cat="job",
            name=f"job {job.job_id} ({job.shuffle_class})",
            event_id=next_id,
            start=job.submit_time,
            finish=job.finish_time,
            args={
                "jct": job.completion_time,
                "shuffle_volume": job.shuffle_volume,
                "remote_map_traffic": job.remote_map_traffic,
            },
        )
        next_id += 1

    seen_servers: set[int] = set()
    for task in metrics.tasks:
        args = {
            "server": task.server,
            "attempt": task.attempt,
            "speculative": task.speculative,
        }
        _async_pair(
            events,
            pid=_PID_JOBS,
            tid=task.job_id,
            cat="task",
            name=f"{task.kind} {task.index}",
            event_id=next_id,
            start=task.start,
            finish=task.finish,
            args=args,
        )
        next_id += 1
        if task.server >= 0:
            if task.server not in seen_servers:
                seen_servers.add(task.server)
                events.append(
                    _meta(_PID_SERVERS, f"server {task.server}",
                          tid=task.server)
                )
            _async_pair(
                events,
                pid=_PID_SERVERS,
                tid=task.server,
                cat="task",
                name=f"j{task.job_id}.{task.kind[0]}{task.index}",
                event_id=next_id,
                start=task.start,
                finish=task.finish,
                args=args,
            )
            next_id += 1

    for flow in metrics.flows:
        if flow.finish <= flow.start:
            continue  # instant local delivery: no visible slice
        _async_pair(
            events,
            pid=_PID_FLOWS,
            tid=flow.job_id,
            cat="flow",
            name=f"m{flow.map_index}→r{flow.reduce_index}",
            event_id=next_id,
            start=flow.start,
            finish=flow.finish,
            args={
                "size": flow.size,
                "hops": flow.num_switches,
                "delay_us": flow.delay_us,
            },
        )
        next_id += 1

    if timeline is not None:
        per_switch = len(timeline.switch_ids) <= MAX_SWITCH_TRACKS
        for sample in timeline.samples:
            _counter(events, sample.t, "util: max switch",
                     sample.max_switch_util)
            _counter(events, sample.t, "util: max link", sample.max_link_util)
            _counter(events, sample.t, "util: mean link",
                     sample.mean_link_util)
            _counter(
                events,
                sample.t,
                "occupancy: mean server",
                float(sample.server_occupancy.mean())
                if sample.server_occupancy.size
                else 0.0,
            )
            _counter(events, sample.t, "flows: active", sample.active_flows)
            _counter(events, sample.t, "flows: parked", sample.parked_flows)
            _counter(events, sample.t, "queue depth", sample.queue_depth)
            _counter(events, sample.t, "containers: running",
                     sample.running_containers)
            for gauge, value in sorted(sample.gauges.items()):
                _counter(events, sample.t, gauge.replace("_", ": ", 1), value)
            if per_switch:
                for w, value in zip(timeline.switch_ids, sample.switch_util):
                    _counter(events, sample.t, f"util: switch {w}",
                             float(value))
        for marker in timeline.markers:
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": marker.kind,
                    "pid": _PID_TELEMETRY,
                    "tid": 0,
                    "ts": marker.t * TIME_SCALE_US,
                    "args": {"detail": marker.detail},
                }
            )

    if provenance is not None:
        records = provenance.records()
        if records:
            events.append(
                _meta(_PID_DECISIONS, f"decisions — {provenance.scheduler}")
            )
            kind_tid = {
                kind: tid
                for tid, kind in enumerate(
                    sorted({r.kind for r in records}), start=1
                )
            }
            for kind, tid in sorted(kind_tid.items()):
                events.append(_meta(_PID_DECISIONS, kind, tid=tid))
            for record in records:
                args = record.to_dict()
                args.pop("t", None)
                args.pop("kind", None)
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "name": f"{record.kind}: {record.reason}",
                        "pid": _PID_DECISIONS,
                        "tid": kind_tid[record.kind],
                        "ts": record.t * TIME_SCALE_US,
                        "args": args,
                    }
                )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": scheduler,
            "jobs": len(metrics.jobs),
            "tasks": len(metrics.tasks),
            "flows": len(metrics.flows),
            "timeUnit": "1 simulated time unit = 1 s",
        },
    }


def save_chrome_trace(
    path: str | Path,
    metrics: "MetricsCollector",
    timeline: "TimelineRecorder | None" = None,
    scheduler: str = "run",
    provenance: "ProvenanceRecorder | None" = None,
) -> dict[str, Any]:
    """Write the trace JSON to ``path`` and return the object."""
    trace = build_chrome_trace(
        metrics, timeline, scheduler=scheduler, provenance=provenance
    )
    Path(path).write_text(json.dumps(trace), encoding="utf-8")
    return trace


_KNOWN_PHASES = frozenset({"B", "E", "X", "b", "e", "n", "i", "I", "C", "M"})


def validate_chrome_trace(trace: Any) -> list[str]:
    """Structural validation of a trace-event JSON object.

    Returns human-readable problems (empty list = valid).  Checks the
    subset of the Trace Event Format this exporter emits — enough for CI to
    prove an export will load in Perfetto / ``chrome://tracing``.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    open_async: dict[tuple[Any, Any, Any], int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata needs an args object")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(
                    f"{where}: counter args must be numeric and non-empty"
                )
        if ph in ("b", "e"):
            if "id" not in ev or not isinstance(ev.get("cat"), str):
                problems.append(f"{where}: async event needs id and cat")
            else:
                key = (ev["cat"], ev["id"], ev["pid"])
                if ph == "b":
                    open_async[key] = open_async.get(key, 0) + 1
                else:
                    if open_async.get(key, 0) <= 0:
                        problems.append(
                            f"{where}: async end without matching begin"
                        )
                    else:
                        open_async[key] -= 1
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: instant scope must be g/p/t")
    dangling = sum(v for v in open_async.values() if v > 0)
    if dangling:
        problems.append(f"{dangling} async begin event(s) never ended")
    return problems


# ---------------------------------------------------------------- HTML report
_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4361ee; padding-bottom: .3rem; }
h2 { color: #4361ee; margin-top: 2rem; }
pre { background: #f6f8fa; border: 1px solid #d0d7de; border-radius: 6px;
      padding: .8rem 1rem; overflow-x: auto; font-size: .85rem; }
svg { background: #fbfbfe; border: 1px solid #d0d7de; border-radius: 6px; }
figure { margin: 1rem 0; }
figcaption { font-size: .8rem; color: #555; }
.meta { color: #555; font-size: .85rem; }
"""


def _svg_series(
    ts: Sequence[float],
    values: Sequence[float],
    caption: str,
    width: int = 640,
    height: int = 120,
    max_points: int = 600,
) -> str:
    """Inline-SVG polyline of one gauge timeline (no dependencies)."""
    n = len(ts)
    if n == 0:
        return ""
    stride = max(1, n // max_points)
    ts = list(ts[::stride])
    values = list(values[::stride])
    t0, t1 = ts[0], ts[-1]
    span_t = (t1 - t0) or 1.0
    vmax = max(max(values), 1e-12)
    pad = 6
    points = " ".join(
        f"{pad + (t - t0) / span_t * (width - 2 * pad):.1f},"
        f"{height - pad - v / vmax * (height - 2 * pad):.1f}"
        for t, v in zip(ts, values)
    )
    return (
        f'<figure><svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#4361ee" stroke-width="1.5" '
        f'points="{points}"/></svg>'
        f"<figcaption>{_html.escape(caption)} — peak "
        f"{max(values):.3f} at t∈[{t0:.2f}, {t1:.2f}]</figcaption></figure>"
    )


def render_html_report(
    runs: Sequence[Mapping[str, Any]],
    title: str = "repro telemetry report",
) -> str:
    """Self-contained HTML report over one or more scheduler runs.

    Each entry of ``runs`` is a mapping with keys:

    * ``scheduler`` (str) — display name;
    * ``metrics`` (:class:`MetricsCollector`) — required;
    * ``timeline`` (:class:`TimelineRecorder` or None);
    * ``critical`` (list of :class:`JobCriticalPath`, optional);
    * ``counters`` (dict, optional) — fault/speculation counters.

    Tables are emitted in markdown style inside ``<pre>`` blocks so rows
    can be copy-pasted into EXPERIMENTS.md verbatim.
    """
    from ..analysis.critical_path import SEGMENTS, format_critical_path
    from ..analysis.report import format_table

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        "<p class='meta'>Tables are GitHub-flavoured markdown — "
        "copy-paste rows straight into EXPERIMENTS.md.  Time unit: "
        "simulated seconds.</p>",
    ]
    for run in runs:
        name = str(run["scheduler"])
        metrics = run["metrics"]
        timeline = run.get("timeline")
        critical = run.get("critical")
        counters = run.get("counters") or {}
        parts.append(f"<h2>{_html.escape(name)}</h2>")
        summary = metrics.summary()
        table = format_table(
            headers=("metric", "value"),
            rows=sorted(summary.items()),
            title=f"{name}: run summary",
            style="markdown",
        )
        parts.append(f"<pre>{_html.escape(table)}</pre>")
        if critical:
            parts.append(
                "<pre>"
                + _html.escape(
                    format_critical_path({name: critical}, style="markdown")
                )
                + "</pre>"
            )
            dominant = max(
                SEGMENTS,
                key=lambda s: sum(p.segments[s] for p in critical),
            )
            parts.append(
                f"<p class='meta'>dominant JCT segment: "
                f"<b>{dominant}</b></p>"
            )
        if counters:
            table = format_table(
                headers=("counter", "value"),
                rows=sorted(counters.items()),
                title=f"{name}: subsystem counters",
                style="markdown",
            )
            parts.append(f"<pre>{_html.escape(table)}</pre>")
        if timeline is not None and timeline.samples:
            ts = timeline.times()
            for series, caption in (
                ("max_switch_util", "max switch utilisation"),
                ("mean_link_util", "mean link utilisation"),
                ("active_flows", "active shuffle flows"),
                ("mean_occupancy", "mean server occupancy"),
                ("queue_depth", "event-queue depth"),
            ):
                parts.append(
                    _svg_series(ts, timeline.series(series), caption)
                )
            tl_summary = timeline.summary()
            table = format_table(
                headers=("gauge", "value"),
                rows=sorted(tl_summary.items()),
                title=f"{name}: timeline summary "
                      f"({tl_summary.get('samples', 0)} samples)",
                style="markdown",
            )
            parts.append(f"<pre>{_html.escape(table)}</pre>")
            if timeline.markers:
                table = format_table(
                    headers=("t", "kind", "detail"),
                    rows=[
                        (m.t, m.kind, m.detail)
                        for m in timeline.markers[:200]
                    ],
                    title=f"{name}: fault/speculation markers",
                    style="markdown",
                )
                parts.append(f"<pre>{_html.escape(table)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def save_html_report(
    path: str | Path,
    runs: Sequence[Mapping[str, Any]],
    title: str = "repro telemetry report",
) -> None:
    Path(path).write_text(render_html_report(runs, title), encoding="utf-8")
