"""Lightweight structured tracing: counters, timers, JSON-lines spans.

Two tracer flavours share one interface:

* :class:`NullTracer` — the default; every operation is a no-op and the
  singleton :data:`NULL_TRACER` is what instrumented code sees when tracing
  is off.  Hot paths additionally guard on ``STATE.enabled`` (see
  :mod:`repro.obs.runtime`) so the disabled cost is one attribute load and a
  branch.
* :class:`Tracer` — accumulates named counters and aggregate timers
  in-process and, when given a sink, emits one JSON object per line
  (``{"ev": ..., "name": ..., ...}``) for offline analysis.

Two timing APIs with different granularity:

* :meth:`Tracer.timeit` — aggregate-only context manager for hot paths
  (e.g. every Algorithm 1 DP call); records ``calls``/``total_ms`` but never
  writes a line per call.
* :meth:`Tracer.span` — coarse phases (a Hit optimisation sweep, a whole
  simulation run); aggregates *and* writes a ``span`` line with duration and
  caller-supplied attributes.

The JSONL schema is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import IO, Any, Iterator

__all__ = ["NullTracer", "NULL_TRACER", "Tracer", "TimerStat"]


class NullTracer:
    """Do-nothing tracer; the disabled default."""

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        yield

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        yield

    def close(self) -> None:
        pass


#: Shared no-op instance — instrumented modules read this when tracing is off.
NULL_TRACER = NullTracer()


class TimerStat:
    """Aggregate of one named timer: call count and total elapsed time."""

    __slots__ = ("calls", "total_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0

    def add(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0


class Tracer:
    """Counter/timer aggregation plus optional JSON-lines event output.

    ``sink`` is any text file-like object; pass ``None`` to aggregate only
    (counters and timers still accumulate, nothing is written).  The tracer
    owns sinks it opened via :meth:`to_path` and closes them in
    :meth:`close`; caller-supplied sinks are flushed but left open.
    """

    enabled = True

    def __init__(self, sink: IO[str] | None = None) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, TimerStat] = {}
        self._sink = sink
        self._owns_sink = False
        self._t0 = time.perf_counter()
        self.events_written = 0

    @classmethod
    def to_path(cls, path: str) -> "Tracer":
        """Tracer writing JSON lines to ``path`` (truncates an existing file)."""
        tracer = cls(sink=open(path, "w", encoding="utf-8"))
        tracer._owns_sink = True
        return tracer

    # ------------------------------------------------------------- recording
    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter (aggregate only, never a JSONL line)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def event(self, name: str, **attrs: Any) -> None:
        """Emit one point event as a JSONL line (no-op without a sink)."""
        self._write({"ev": "event", "name": name, "t_ms": self._now_ms(), **attrs})

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Aggregate-only timing for hot paths; no per-call output."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timers.setdefault(name, TimerStat()).add(
                time.perf_counter() - start
            )

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Timed phase: aggregates like :meth:`timeit` and writes a
        ``span`` line with the duration and the given attributes."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers.setdefault(name, TimerStat()).add(elapsed)
            self._write(
                {
                    "ev": "span",
                    "name": name,
                    "t_ms": self._now_ms(),
                    "dur_ms": round(elapsed * 1e3, 6),
                    **attrs,
                }
            )

    # ----------------------------------------------------------------- output
    def _now_ms(self) -> float:
        return round((time.perf_counter() - self._t0) * 1e3, 6)

    def _write(self, record: dict[str, Any]) -> None:
        if self._sink is None:
            return
        self._sink.write(json.dumps(record, default=str) + "\n")
        self.events_written += 1

    def summary(self) -> dict[str, Any]:
        """Counters plus per-timer call counts / totals, for reports."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {
                    "calls": stat.calls,
                    "total_ms": round(stat.total_ms, 3),
                    "mean_ms": round(stat.mean_ms, 6),
                }
                for name, stat in sorted(self.timers.items())
            },
        }

    # ----------------------------------------------------------- run report
    def top_timers(self, n: int = 10) -> list[tuple[str, TimerStat]]:
        """The ``n`` timers with the largest cumulative wall time.

        Ties break alphabetically so the report is deterministic across
        runs with equal totals (e.g. two untriggered zero-call timers).
        """
        if n < 1:
            raise ValueError(f"top_timers needs n >= 1, got {n}")
        ranked = sorted(
            self.timers.items(), key=lambda kv: (-kv[1].total_s, kv[0])
        )
        return ranked[:n]

    def counter_deltas(
        self, baseline: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Counter changes since ``baseline`` (a prior ``dict(counters)``).

        With no baseline this is simply the sorted counter snapshot; with
        one, counters equal to their baseline value are dropped so the
        report shows only what moved during the measured phase.
        """
        if baseline is None:
            return dict(sorted(self.counters.items()))
        out: dict[str, int] = {}
        for name in sorted(set(self.counters) | set(baseline)):
            delta = self.counters.get(name, 0) - baseline.get(name, 0)
            if delta != 0:
                out[name] = delta
        return out

    def format_report(
        self, *, top: int = 10, baseline: dict[str, int] | None = None
    ) -> str:
        """Human-readable end-of-run digest: top timers + counter deltas.

        One line per timer (``name  calls  total_ms  mean_ms``) followed by
        the counters that moved; intended for CLI ``--observe`` output and
        log tails, not for machine parsing (that is :meth:`summary`).
        """
        lines: list[str] = []
        timers = self.top_timers(top) if self.timers else []
        if timers:
            lines.append(f"top {len(timers)} timers by cumulative time:")
            width = max(len(name) for name, _ in timers)
            for name, stat in timers:
                lines.append(
                    f"  {name:<{width}}  {stat.calls:>8} calls"
                    f"  {stat.total_ms:>12.3f} ms total"
                    f"  {stat.mean_ms:>10.6f} ms/call"
                )
        else:
            lines.append("no timers recorded")
        deltas = self.counter_deltas(baseline)
        if deltas:
            label = "counter deltas" if baseline is not None else "counters"
            lines.append(f"{label}:")
            width = max(len(name) for name in deltas)
            for name, value in deltas.items():
                lines.append(f"  {name:<{width}}  {value}")
        else:
            lines.append("no counters moved")
        return "\n".join(lines)

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Write a final ``summary`` line and close an owned sink."""
        if self._sink is not None:
            self._write({"ev": "summary", "name": "tracer", **self.summary()})
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
                self._sink = None
