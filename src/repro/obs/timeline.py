"""Simulated-time telemetry plane: gauge timelines keyed to the event clock.

Where :mod:`repro.obs.tracer` records *wall-clock* spans of the optimiser's
hot paths, this module records what the simulated cluster looks like as
**simulated time** advances: per-switch and per-link utilisation, per-server
container occupancy, event-queue depth, active/parked shuffle flows, and the
live fault/speculation state.  That is the instrumentation behind "where do
time and traffic go" questions — link saturation during a shuffle burst,
straggler onset, fault-recovery churn — that end-of-run aggregates
(:class:`~repro.simulator.metrics.MetricsCollector`) cannot answer.

The recorder is **opt-in** (``SimulationConfig.timeline_dt``; CLI
``--timeline``/``--timeline-dt``) and **provably non-perturbing**:

* it samples on a fixed grid ``t_k = k * dt`` of the *simulated* clock, at
  event boundaries — rates are piecewise constant between events, so the
  pre-dispatch state is exact for every grid point inside the elapsed
  interval;
* every read is side-effect free.  The only shared computation it can
  trigger is :meth:`~repro.simulator.network.FlowNetwork.ensure_rates`,
  which is idempotent and deterministic (the engine would run the same
  recomputation at its next advance), so a recorded run is byte-identical
  to an unrecorded one — enforced by
  ``tests/simulator/test_nonperturbation.py`` across seeds, fault timelines
  and speculation.

The gauge catalogue is documented in ``docs/observability.md``; exports
(Perfetto trace, HTML report) live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.engine import MapReduceSimulator
    from ..simulator.events import Event
    from ..topology.base import Topology

__all__ = ["TimelineMarker", "TimelineRecorder", "TimelineSample"]


#: Event kinds that become discrete markers on the timeline (compared by
#: name so this module never imports the simulator at import time).
_MARKER_KINDS = frozenset(
    {
        "SERVER_FAIL",
        "SERVER_RECOVER",
        "SWITCH_FAIL",
        "SWITCH_RECOVER",
        "TASK_SLOWDOWN",
        "KILL_ATTEMPT",
    }
)


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of the simulated cluster at grid time ``t``."""

    t: float
    #: Utilisation (rate / capacity) per switch, ordered by switch id.
    switch_util: np.ndarray
    #: Utilisation per *directed* link, ordered by (u, v).
    link_util: np.ndarray
    #: Fraction of each server's memory capacity in use, ordered by id.
    server_occupancy: np.ndarray
    #: Containers currently placed somewhere.
    running_containers: int
    #: Events still queued (including future fault-timeline entries).
    queue_depth: int
    active_flows: int
    parked_flows: int
    #: Subsystem gauges: ``failed_servers`` / ``failed_switches`` (faults),
    #: ``live_backups`` / ``live_pairs`` (speculation).  Empty when the
    #: corresponding subsystem is off.
    gauges: dict[str, float]

    @property
    def max_switch_util(self) -> float:
        return float(self.switch_util.max()) if self.switch_util.size else 0.0

    @property
    def max_link_util(self) -> float:
        return float(self.link_util.max()) if self.link_util.size else 0.0

    @property
    def mean_link_util(self) -> float:
        return float(self.link_util.mean()) if self.link_util.size else 0.0


@dataclass(frozen=True)
class TimelineMarker:
    """A discrete fault/speculation occurrence pinned to the event clock."""

    t: float
    kind: str
    detail: str


class TimelineRecorder:
    """Samples gauges on a fixed simulated-time grid during a run.

    The engine calls :meth:`observe` with each event *before* dispatching
    it, and :meth:`finish` once the queue drains.  All state reads are
    side-effect free; see the module docstring for the non-perturbation
    argument.
    """

    def __init__(self, topology: "Topology", dt: float = 0.05) -> None:
        if dt <= 0:
            raise ValueError(f"timeline dt must be positive, got {dt}")
        self.topology = topology
        self.dt = float(dt)
        self.samples: list[TimelineSample] = []
        self.markers: list[TimelineMarker] = []
        self.switch_ids: tuple[int, ...] = tuple(topology.switch_ids)
        self.server_ids: tuple[int, ...] = tuple(topology.server_ids)
        #: Directed-link keys in sample order (fixed on the first sample).
        self.link_keys: tuple[tuple[int, int], ...] | None = None
        self._tick = 0
        self._finished = False

    # -------------------------------------------------------------- recording
    def observe(self, sim: "MapReduceSimulator", event: "Event") -> None:
        """Record grid samples up to ``event.time`` (pre-dispatch state)."""
        while self._tick * self.dt <= event.time:
            self._sample(sim, self._tick * self.dt)
            self._tick += 1
        kind = event.kind.name
        if kind in _MARKER_KINDS:
            self.markers.append(
                TimelineMarker(event.time, kind.lower(), str(event.payload))
            )

    def finish(self, sim: "MapReduceSimulator", t_end: float) -> None:
        """Record the drained end-of-run state exactly once."""
        if self._finished:
            return
        self._finished = True
        self._sample(sim, t_end)

    def _sample(self, sim: "MapReduceSimulator", t: float) -> None:
        network = sim.network
        network.ensure_rates()
        by_switch = network.utilisation_by_switch()
        by_link = network.utilisation_by_link()
        if self.link_keys is None:
            self.link_keys = tuple(sorted(by_link))
        cluster = sim.cluster
        occupancy = np.empty(len(self.server_ids), dtype=np.float64)
        running = 0
        for i, sid in enumerate(self.server_ids):
            cap = cluster.capacity(sid).memory
            occupancy[i] = cluster.used(sid).memory / cap if cap > 0 else 0.0
            running += len(cluster.hosted_on(sid))
        gauges: dict[str, float] = {}
        if sim.faults is not None:
            gauges.update(sim.faults.gauges())
        if sim.speculation is not None:
            gauges.update(sim.speculation.gauges())
        self.samples.append(
            TimelineSample(
                t=t,
                switch_util=np.array(
                    [by_switch[w] for w in self.switch_ids], dtype=np.float64
                ),
                link_util=np.array(
                    [by_link[k] for k in self.link_keys], dtype=np.float64
                ),
                server_occupancy=occupancy,
                running_containers=running,
                queue_depth=len(sim._queue),
                active_flows=len(network.active_flows),
                parked_flows=len(sim._parked),
                gauges=gauges,
            )
        )

    # ---------------------------------------------------------------- queries
    def times(self) -> np.ndarray:
        return np.array([s.t for s in self.samples])

    def series(self, name: str) -> np.ndarray:
        """Scalar gauge timeline by name.

        Built-ins: ``max_switch_util``, ``max_link_util``,
        ``mean_link_util``, ``queue_depth``, ``active_flows``,
        ``parked_flows``, ``running_containers``, ``mean_occupancy`` — plus
        any subsystem gauge key (``failed_servers``, ``live_backups``, …),
        which reads 0.0 on samples where the subsystem was off.
        """
        out = np.empty(len(self.samples), dtype=np.float64)
        for i, s in enumerate(self.samples):
            if name == "mean_occupancy":
                out[i] = (
                    float(s.server_occupancy.mean())
                    if s.server_occupancy.size
                    else 0.0
                )
            elif hasattr(s, name):
                out[i] = float(getattr(s, name))
            else:
                out[i] = s.gauges.get(name, 0.0)
        return out

    def switch_series(self, switch_id: int) -> np.ndarray:
        """Utilisation timeline of one switch."""
        idx = self.switch_ids.index(switch_id)
        return np.array([s.switch_util[idx] for s in self.samples])

    def summary(self) -> dict[str, Any]:
        """Aggregates for reports: peaks and means over the run."""
        if not self.samples:
            return {"samples": 0, "markers": len(self.markers)}
        return {
            "samples": len(self.samples),
            "markers": len(self.markers),
            "dt": self.dt,
            "peak_switch_util": float(
                max(s.max_switch_util for s in self.samples)
            ),
            "peak_link_util": float(
                max(s.max_link_util for s in self.samples)
            ),
            "peak_queue_depth": int(
                max(s.queue_depth for s in self.samples)
            ),
            "peak_active_flows": int(
                max(s.active_flows for s in self.samples)
            ),
            "peak_occupancy": float(
                max(
                    (
                        float(s.server_occupancy.max())
                        if s.server_occupancy.size
                        else 0.0
                    )
                    for s in self.samples
                )
            ),
        }
