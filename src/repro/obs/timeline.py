"""Simulated-time telemetry plane: gauge timelines keyed to the event clock.

Where :mod:`repro.obs.tracer` records *wall-clock* spans of the optimiser's
hot paths, this module records what the simulated cluster looks like as
**simulated time** advances: per-switch and per-link utilisation, per-server
container occupancy, event-queue depth, active/parked shuffle flows, and the
live fault/speculation state.  That is the instrumentation behind "where do
time and traffic go" questions — link saturation during a shuffle burst,
straggler onset, fault-recovery churn — that end-of-run aggregates
(:class:`~repro.simulator.metrics.MetricsCollector`) cannot answer.

The recorder is **opt-in** (``SimulationConfig.timeline_dt``; CLI
``--timeline``/``--timeline-dt``) and **provably non-perturbing**:

* it samples on a fixed grid ``t_k = k * dt`` of the *simulated* clock, at
  event boundaries — rates are piecewise constant between events, so the
  pre-dispatch state is exact for every grid point inside the elapsed
  interval;
* every read is side-effect free.  The only shared computation it can
  trigger is :meth:`~repro.simulator.network.FlowNetwork.ensure_rates`,
  which is idempotent and deterministic (the engine would run the same
  recomputation at its next advance), so a recorded run is byte-identical
  to an unrecorded one — enforced by
  ``tests/simulator/test_nonperturbation.py`` across seeds, fault timelines
  and speculation.

The gauge catalogue is documented in ``docs/observability.md``; exports
(Perfetto trace, HTML report) live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

import numpy as np

from .runtime import STATE as _OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.engine import MapReduceSimulator
    from ..simulator.events import Event
    from ..topology.base import Topology

__all__ = ["TimelineMarker", "TimelineRecorder", "TimelineSample"]


#: Event kinds that become discrete markers on the timeline (compared by
#: name so this module never imports the simulator at import time).
_MARKER_KINDS = frozenset(
    {
        "SERVER_FAIL",
        "SERVER_RECOVER",
        "SWITCH_FAIL",
        "SWITCH_RECOVER",
        "TASK_SLOWDOWN",
        "KILL_ATTEMPT",
    }
)


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of the simulated cluster at grid time ``t``."""

    t: float
    #: Utilisation (rate / capacity) per switch, ordered by switch id.
    switch_util: np.ndarray
    #: Utilisation per *directed* link, ordered by (u, v).
    link_util: np.ndarray
    #: Fraction of each server's memory capacity in use, ordered by id.
    server_occupancy: np.ndarray
    #: Containers currently placed somewhere.
    running_containers: int
    #: Events still queued (including future fault-timeline entries).
    queue_depth: int
    active_flows: int
    parked_flows: int
    #: Subsystem gauges: ``failed_servers`` / ``failed_switches`` (faults),
    #: ``live_backups`` / ``live_pairs`` (speculation).  Empty when the
    #: corresponding subsystem is off.
    gauges: dict[str, float]

    @property
    def max_switch_util(self) -> float:
        return float(self.switch_util.max()) if self.switch_util.size else 0.0

    @property
    def max_link_util(self) -> float:
        return float(self.link_util.max()) if self.link_util.size else 0.0

    @property
    def mean_link_util(self) -> float:
        return float(self.link_util.mean()) if self.link_util.size else 0.0


@dataclass(frozen=True)
class TimelineMarker:
    """A discrete fault/speculation occurrence pinned to the event clock."""

    t: float
    kind: str
    detail: str


def _sample_to_dict(sample: TimelineSample) -> dict[str, Any]:
    """JSON-serialisable form of one sample (for the spill sink)."""
    return {
        "t": sample.t,
        "switch_util": sample.switch_util.tolist(),
        "link_util": sample.link_util.tolist(),
        "server_occupancy": sample.server_occupancy.tolist(),
        "running_containers": sample.running_containers,
        "queue_depth": sample.queue_depth,
        "active_flows": sample.active_flows,
        "parked_flows": sample.parked_flows,
        "gauges": sample.gauges,
    }


class TimelineRecorder:
    """Samples gauges on a fixed simulated-time grid during a run.

    The engine calls :meth:`observe` with each event *before* dispatching
    it, and :meth:`finish` once the queue drains.  All state reads are
    side-effect free; see the module docstring for the non-perturbation
    argument.
    """

    def __init__(
        self,
        topology: "Topology",
        dt: float = 0.05,
        *,
        max_samples: int | None = None,
        spill_path: str | Path | None = None,
    ) -> None:
        if dt <= 0:
            raise ValueError(f"timeline dt must be positive, got {dt}")
        if max_samples is not None and max_samples < 1:
            raise ValueError("timeline max_samples must be >= 1")
        self.topology = topology
        self.dt = float(dt)
        #: In-memory sample buffer.  With ``max_samples`` set this holds at
        #: most that many recent samples — the overflow streams to
        #: ``spill_path`` as JSONL (or is dropped when no path is given), so
        #: memory stays bounded on fat-tree k=16 / 10k-flow runs.  Queries
        #: (:meth:`times`, :meth:`series`, :meth:`switch_series`) cover the
        #: buffered tail only; :meth:`summary` stays exact via running
        #: aggregates.
        self.samples: list[TimelineSample] = []
        self.markers: list[TimelineMarker] = []
        self.switch_ids: tuple[int, ...] = tuple(topology.switch_ids)
        self.server_ids: tuple[int, ...] = tuple(topology.server_ids)
        #: Directed-link keys in sample order (fixed on the first sample).
        self.link_keys: tuple[tuple[int, int], ...] | None = None
        self.max_samples = max_samples
        self.spill_path = None if spill_path is None else Path(spill_path)
        #: Samples moved out of memory (spilled to disk or dropped).
        self.spilled_samples = 0
        #: Times the overflow handling engaged (one flush of the buffer).
        self.spill_events = 0
        #: Samples taken over the whole run, buffered or not.
        self.total_samples = 0
        self._sink: IO[str] | None = None
        self._tick = 0
        self._finished = False
        # Running aggregates so summary() is exact regardless of spill.
        self._peak_switch_util = 0.0
        self._peak_link_util = 0.0
        self._peak_queue_depth = 0
        self._peak_active_flows = 0
        self._peak_occupancy = 0.0

    # -------------------------------------------------------------- recording
    def observe(self, sim: "MapReduceSimulator", event: "Event") -> None:
        """Record grid samples up to ``event.time`` (pre-dispatch state)."""
        while self._tick * self.dt <= event.time:
            self._sample(sim, self._tick * self.dt)
            self._tick += 1
        kind = event.kind.name
        if kind in _MARKER_KINDS:
            self.markers.append(
                TimelineMarker(event.time, kind.lower(), str(event.payload))
            )

    def finish(self, sim: "MapReduceSimulator", t_end: float) -> None:
        """Record the drained end-of-run state exactly once."""
        if self._finished:
            return
        self._finished = True
        self._sample(sim, t_end)
        self.close()

    def close(self) -> None:
        """Flush and close the spill sink (idempotent)."""
        if self._sink is not None:
            self._sink.flush()
            self._sink.close()
            self._sink = None

    def _sample(self, sim: "MapReduceSimulator", t: float) -> None:
        network = sim.network
        network.ensure_rates()
        by_switch = network.utilisation_by_switch()
        by_link = network.utilisation_by_link()
        if self.link_keys is None:
            self.link_keys = tuple(sorted(by_link))
        cluster = sim.cluster
        occupancy = np.empty(len(self.server_ids), dtype=np.float64)
        running = 0
        for i, sid in enumerate(self.server_ids):
            cap = cluster.capacity(sid).memory
            occupancy[i] = cluster.used(sid).memory / cap if cap > 0 else 0.0
            running += len(cluster.hosted_on(sid))
        gauges: dict[str, float] = {}
        if sim.faults is not None:
            gauges.update(sim.faults.gauges())
        if sim.speculation is not None:
            gauges.update(sim.speculation.gauges())
        sample = TimelineSample(
            t=t,
            switch_util=np.array(
                [by_switch[w] for w in self.switch_ids], dtype=np.float64
            ),
            link_util=np.array(
                [by_link[k] for k in self.link_keys], dtype=np.float64
            ),
            server_occupancy=occupancy,
            running_containers=running,
            queue_depth=len(sim._queue),
            active_flows=len(network.active_flows),
            parked_flows=len(sim._parked),
            gauges=gauges,
        )
        self.total_samples += 1
        self._peak_switch_util = max(
            self._peak_switch_util, sample.max_switch_util
        )
        self._peak_link_util = max(self._peak_link_util, sample.max_link_util)
        self._peak_queue_depth = max(self._peak_queue_depth, sample.queue_depth)
        self._peak_active_flows = max(
            self._peak_active_flows, sample.active_flows
        )
        if occupancy.size:
            self._peak_occupancy = max(
                self._peak_occupancy, float(occupancy.max())
            )
        if (
            self.max_samples is not None
            and len(self.samples) >= self.max_samples
        ):
            self._spill()
        self.samples.append(sample)

    def _spill(self) -> None:
        """Flush the in-memory buffer to the JSONL sink (or drop it).

        Counted once per flush under ``obs.timeline_spilled`` so a bounded
        run is visible in the tracer report even when nobody inspects the
        recorder directly."""
        if self.spill_path is not None:
            if self._sink is None:
                self._sink = self.spill_path.open("w", encoding="utf-8")
            for sample in self.samples:
                self._sink.write(
                    json.dumps(
                        _sample_to_dict(sample),
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
        self.spilled_samples += len(self.samples)
        self.spill_events += 1
        self.samples.clear()
        _OBS.tracer.count("obs.timeline_spilled")

    # ---------------------------------------------------------------- queries
    def times(self) -> np.ndarray:
        return np.array([s.t for s in self.samples])

    def series(self, name: str) -> np.ndarray:
        """Scalar gauge timeline by name.

        Built-ins: ``max_switch_util``, ``max_link_util``,
        ``mean_link_util``, ``queue_depth``, ``active_flows``,
        ``parked_flows``, ``running_containers``, ``mean_occupancy`` — plus
        any subsystem gauge key (``failed_servers``, ``live_backups``, …),
        which reads 0.0 on samples where the subsystem was off.
        """
        out = np.empty(len(self.samples), dtype=np.float64)
        for i, s in enumerate(self.samples):
            if name == "mean_occupancy":
                out[i] = (
                    float(s.server_occupancy.mean())
                    if s.server_occupancy.size
                    else 0.0
                )
            elif hasattr(s, name):
                out[i] = float(getattr(s, name))
            else:
                out[i] = s.gauges.get(name, 0.0)
        return out

    def switch_series(self, switch_id: int) -> np.ndarray:
        """Utilisation timeline of one switch."""
        idx = self.switch_ids.index(switch_id)
        return np.array([s.switch_util[idx] for s in self.samples])

    def summary(self) -> dict[str, Any]:
        """Aggregates for reports: peaks and means over the run.

        Computed from running aggregates maintained at sample time, so the
        values cover *every* sample taken — identical whether or not the
        bounded-memory mode spilled part of the run out of the buffer.
        """
        if self.total_samples == 0:
            return {"samples": 0, "markers": len(self.markers)}
        out: dict[str, Any] = {
            "samples": self.total_samples,
            "markers": len(self.markers),
            "dt": self.dt,
            "peak_switch_util": float(self._peak_switch_util),
            "peak_link_util": float(self._peak_link_util),
            "peak_queue_depth": int(self._peak_queue_depth),
            "peak_active_flows": int(self._peak_active_flows),
            "peak_occupancy": float(self._peak_occupancy),
        }
        if self.spilled_samples:
            out["spilled_samples"] = self.spilled_samples
        return out
