"""Observability: runtime invariant checking and structured tracing.

``repro.obs`` gives every refactor and performance PR a regression
tripwire: the :class:`InvariantChecker` verifies the paper's correctness
invariants (server/switch capacities, policy satisfaction, matching
stability, flow conservation) against live objects, and the
:class:`Tracer` collects counters, aggregate timers and JSON-lines spans
from the instrumented hot paths (Algorithm 1 path search, Algorithm 2
proposal rounds, simulator event dispatch).

Both are opt-in: nothing is checked or traced until a checker/tracer is
installed via :func:`observe` / :func:`install`, the CLI's
``--check-invariants`` / ``--trace`` flags, or the
``REPRO_CHECK_INVARIANTS`` / ``REPRO_TRACE`` environment variables.  See
``docs/observability.md`` for the invariant catalogue and trace schema.
"""

from .export import (
    build_chrome_trace,
    render_html_report,
    save_chrome_trace,
    save_html_report,
    validate_chrome_trace,
)
from .invariants import InvariantChecker, InvariantError, InvariantViolation
from .provenance import (
    DECISION_KINDS,
    REASON_CODES,
    DecisionRecord,
    ProvenanceConfig,
    ProvenanceRecorder,
    decision_digest,
    explain_task,
    flow_label,
    format_record,
    load_decisions,
    summarize_decisions,
    task_label,
)
from .runtime import STATE, ObsState, install, observe, uninstall
from .timeline import TimelineMarker, TimelineRecorder, TimelineSample
from .tracer import NULL_TRACER, NullTracer, Tracer, TimerStat

__all__ = [
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TimerStat",
    "STATE",
    "ObsState",
    "install",
    "uninstall",
    "observe",
    "TimelineRecorder",
    "TimelineSample",
    "TimelineMarker",
    "DECISION_KINDS",
    "REASON_CODES",
    "DecisionRecord",
    "ProvenanceConfig",
    "ProvenanceRecorder",
    "decision_digest",
    "explain_task",
    "flow_label",
    "format_record",
    "load_decisions",
    "summarize_decisions",
    "task_label",
    "build_chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "render_html_report",
    "save_html_report",
]
