"""Process-wide observability state and the opt-in hook surface.

Instrumented modules (``core/policy.py``, ``core/matching.py``,
``core/hit.py``, ``simulator/engine.py``) read the module-level
:data:`STATE` holder at their hook points:

.. code-block:: python

    from ..obs.runtime import STATE as _OBS
    ...
    if _OBS.enabled:                      # one attribute load + branch
        if _OBS.checker is not None:
            _OBS.checker.check_switch_capacity(self, where="assign")
        _OBS.tracer.count("alg1.assign")

With nothing installed ``STATE.enabled`` is ``False`` and the entire hook
costs a single predictable branch — the subsystem's "near-zero overhead when
disabled" contract.

Installation is either explicit (:func:`install` / :func:`uninstall`, or the
:func:`observe` context manager used by the CLI and tests) or via
environment variables read once at import:

* ``REPRO_CHECK_INVARIANTS=1`` — install a ``raise``-mode
  :class:`~repro.obs.invariants.InvariantChecker` (CI smoke runs).
* ``REPRO_TRACE=/path/to/file.jsonl`` — install a
  :class:`~repro.obs.tracer.Tracer` writing JSON lines to the path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .invariants import InvariantChecker
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["STATE", "ObsState", "install", "uninstall", "observe"]


class ObsState:
    """Mutable holder for the process's checker and tracer."""

    __slots__ = ("checker", "tracer", "enabled")

    def __init__(self) -> None:
        self.checker: InvariantChecker | None = None
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.enabled: bool = False

    def refresh(self) -> None:
        self.enabled = self.checker is not None or self.tracer.enabled


STATE = ObsState()


def install(
    checker: InvariantChecker | None = None,
    tracer: Tracer | None = None,
) -> None:
    """Install a checker and/or tracer process-wide (None leaves a slot)."""
    STATE.checker = checker
    STATE.tracer = tracer if tracer is not None else NULL_TRACER
    STATE.refresh()


def uninstall() -> None:
    """Return to the disabled default (no checker, null tracer)."""
    STATE.checker = None
    STATE.tracer = NULL_TRACER
    STATE.refresh()


@contextmanager
def observe(
    checker: InvariantChecker | None = None,
    tracer: Tracer | None = None,
) -> Iterator[ObsState]:
    """Scoped installation; restores whatever was active before on exit."""
    previous = (STATE.checker, STATE.tracer)
    install(checker=checker, tracer=tracer)
    try:
        yield STATE
    finally:
        STATE.checker, STATE.tracer = previous
        STATE.refresh()


def _init_from_env() -> None:
    flag = os.environ.get("REPRO_CHECK_INVARIANTS", "")
    if flag and flag not in ("0", "false", "no"):
        STATE.checker = InvariantChecker(mode="raise")
    trace_path = os.environ.get("REPRO_TRACE", "")
    if trace_path:
        STATE.tracer = Tracer.to_path(trace_path)
    STATE.refresh()


_init_from_env()
