#!/usr/bin/env python
"""Trace-driven workflow: save a workload, simulate it, analyse the trace.

Shows the data-plumbing APIs a downstream user needs for their own studies:

1. sample a Table-1 workload and save it as a JSON-lines trace;
2. reload the trace (byte-identical workload) and run two schedulers on it;
3. export each run's event trace;
4. compare the runs with CDFs and terminal charts.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis import EmpiricalCDF, bar_chart, series_chart
from repro.experiments import configs
from repro.mapreduce import WorkloadGenerator, load_workload_file, save_workload_file
from repro.schedulers import make_scheduler
from repro.simulator import load_trace, run_simulation, save_trace_file


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))

    # 1. Sample and persist the workload.
    generator = WorkloadGenerator(seed=11, input_size_range=(4.0, 10.0),
                                  map_rate=8.0, reduce_rate=8.0)
    jobs = generator.make_workload(10, interarrival=0.5)
    workload_path = workdir / "workload.jsonl"
    save_workload_file(workload_path, jobs)
    print(f"workload trace: {workload_path} ({len(jobs)} jobs)")

    # 2. Reload (proving the round trip) and simulate under two schedulers.
    reloaded = load_workload_file(workload_path)
    assert reloaded == jobs, "trace round-trip must be exact"

    runs = {}
    for name in ("capacity", "hit"):
        metrics = run_simulation(
            configs.testbed_tree(),
            make_scheduler(name, seed=11),
            reloaded,
            configs.testbed_simulation_config(seed=11),
        )
        runs[name] = metrics
        trace_path = workdir / f"run.{name}.jsonl"
        save_trace_file(trace_path, metrics)
        records = load_trace(trace_path.read_text())
        print(f"run trace [{name}]: {trace_path} ({len(records)} events)")

    # 3. Analyse: JCT CDFs and cost bars.
    print("\nJCT CDF shapes (left = fast):")
    print(series_chart({
        name: EmpiricalCDF.from_samples(m.job_completion_times()).series(30)
        for name, m in runs.items()
    }))

    print("\nshuffle cost:")
    print(bar_chart(
        {name: m.total_shuffle_cost() for name, m in runs.items()},
        value_fmt="{:.1f}",
    ))

    cap, hit = runs["capacity"], runs["hit"]
    print(f"\nmean JCT: capacity {cap.mean_jct():.2f} vs hit {hit.mean_jct():.2f} "
          f"({1 - hit.mean_jct() / cap.mean_jct():.0%} better)")


if __name__ == "__main__":
    main()
