#!/usr/bin/env python
"""Fault injection: how much of each scheduler's edge survives failures?

Replays one deterministic outage timeline — servers crashing and recovering,
a switch going dark mid-shuffle, a straggler server — against several
schedulers on the testbed fabric.  Every baseline sees byte-identical
faults, so the degradation deltas are attributable to placement and policy
alone.  Lost map outputs re-execute, dead reducers re-fetch, flows caught
on a failed switch reroute (or park until recovery); no task is silently
dropped.

Run:  python examples/fault_injection.py
"""

from repro.experiments import fault_degradation
from repro.experiments.configs import testbed_tree
from repro.faults import FaultKind, FaultSpec, validate_timeline


def scripted_timeline():
    """A hand-written scenario (see docs/fault_model.md for the taxonomy).

    Times are in simulated units on the testbed workload, whose first jobs
    are in their shuffle phase around t=1-3.
    """
    topology = testbed_tree()
    core_switch = max(topology.switch_ids)
    return validate_timeline(
        topology,
        [
            # A server hosting early-wave work dies and comes back.
            FaultSpec(0.8, FaultKind.SERVER_FAIL, 3),
            FaultSpec(2.0, FaultKind.SERVER_RECOVER, 3),
            # A second, longer outage elsewhere in the fabric.
            FaultSpec(1.5, FaultKind.SERVER_FAIL, 17),
            FaultSpec(4.0, FaultKind.SERVER_RECOVER, 17),
            # A core switch drops mid-shuffle: flows reroute or park.
            FaultSpec(2.5, FaultKind.SWITCH_FAIL, core_switch),
            FaultSpec(4.5, FaultKind.SWITCH_RECOVER, core_switch),
            # A straggler: server 9 runs at half speed from t=1.
            FaultSpec(1.0, FaultKind.TASK_SLOWDOWN, 9, factor=2.0),
        ],
    )


def main() -> None:
    timeline = scripted_timeline()
    print(f"fault timeline ({len(timeline)} events):")
    for spec in timeline:
        extra = f" x{spec.factor}" if spec.kind is FaultKind.TASK_SLOWDOWN else ""
        print(f"  t={spec.time:5.2f}  {spec.kind.value:<15} node {spec.target}{extra}")

    result = fault_degradation(
        seed=0,
        num_jobs=8,
        scheduler_names=("capacity", "capacity-ecmp", "random", "hit"),
        timeline=timeline,
    )

    header = (
        f"{'scheduler':<14} {'clean JCT':>10} {'faulty JCT':>11} "
        f"{'degr.':>7} {'retries':>8} {'killed':>7} {'parked':>7}"
    )
    print()
    print(header)
    print("-" * len(header))
    for row in result.table():
        retries = row["map_retries"] + row["reduce_retries"]
        print(
            f"{row['scheduler']:<14} {row['clean_mean_jct']:>10.3f} "
            f"{row['faulty_mean_jct']:>11.3f} {row['jct_degradation']:>6.1%} "
            f"{retries:>8} {row['flows_killed']:>7} {row['flows_parked']:>7}"
        )
    print()
    print(
        "Same faults, same jobs, same fabric: any spread in the degradation "
        "column is the scheduler's own robustness."
    )


if __name__ == "__main__":
    main()
