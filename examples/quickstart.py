#!/usr/bin/env python
"""Quickstart: optimise one MapReduce job's placement with Hit-Scheduler.

Builds a small hierarchical cluster, creates a shuffle-heavy job, places it
randomly (what a topology-unaware scheduler would effectively do), then runs
the paper's joint optimisation — Algorithm 1 (network policies) plus
Algorithm 2 (stable-matching task assignment) — and prints the cost before
and after.

It then executes a small job stream in the discrete-event simulator with
the simulated-time telemetry plane on: JCT critical-path attribution plus
a Perfetto-loadable trace export (``quickstart_trace.json``).

Run:  python examples/quickstart.py
"""

from repro.analysis import attribute_run, format_critical_path
from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer, TAAInstance
from repro.mapreduce import JobSpec, ShuffleClass, WorkloadGenerator, build_flows
from repro.obs import save_chrome_trace, validate_chrome_trace
from repro.schedulers import make_scheduler
from repro.simulator import MapReduceSimulator, SimulationConfig
from repro.topology import TreeConfig, build_tree


def main() -> None:
    # 1. A 16-server tree: 4 racks of 4, two switch replicas per position so
    #    flows have alternative routes (multipath is what policy optimisation
    #    exploits).
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    print(f"fabric: {topology}")

    # 2. A shuffle-heavy job: 8 map tasks, 2 reduce tasks, 8 GB input that is
    #    shuffled 1:1 to the reducers (terasort-like).
    job = JobSpec(
        job_id=0,
        name="terasort-demo",
        shuffle_class=ShuffleClass.HEAVY,
        num_maps=8,
        num_reduces=2,
        input_size=8.0,
        shuffle_ratio=1.0,
    )
    print(f"job:    {job.describe()}")

    # 3. One container per task; each demands 1 memory unit (servers have 2).
    demand = Resources(memory=1.0)
    containers, map_ids, reduce_ids = [], [], []
    cid = 0
    for i in range(job.num_maps):
        containers.append(Container(cid, demand, TaskRef(0, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(job.num_reduces):
        containers.append(Container(cid, demand, TaskRef(0, TaskKind.REDUCE, i)))
        reduce_ids.append(cid)
        cid += 1

    # 4. The shuffle flows: one per (map, reduce) pair, sized by the job's
    #    shuffle matrix.
    flows = build_flows(job, map_ids, reduce_ids)
    print(f"flows:  {len(flows)} map->reduce transfers, "
          f"{sum(f.size for f in flows):.1f} GB total")

    # 5. The TAA instance ties containers, flows and the fabric together.
    taa = TAAInstance(topology, containers, flows)

    # 6. Optimise.  The optimizer starts from a random placement (the paper's
    #    assumption) and alternates policy optimisation with stable matching.
    optimizer = HitOptimizer(taa, HitConfig(seed=42))
    result = optimizer.optimize_initial_wave()

    print(f"\nshuffle cost, random placement : {result.initial_cost:8.2f}")
    print(f"shuffle cost, Hit-Scheduler    : {result.final_cost:8.2f}")
    print(f"improvement                    : {result.improvement:8.1%}")
    print(f"cost trace over sweeps         : "
          + " -> ".join(f"{c:.2f}" for c in result.cost_trace))

    # 7. Where did everything land?
    print("\nfinal placement:")
    for c in taa.cluster.containers():
        print(f"  {c.task} -> {topology.server(c.server_id).name}")

    # 8. The instance stays feasible (Eq 3's constraints all hold).
    taa.assert_feasible()
    print("\nall TAA constraints satisfied.")

    # 9. Now run a small job *stream* through the discrete-event simulator
    #    with the telemetry plane on: the timeline recorder samples link/
    #    switch utilisation and occupancy on the simulated clock (without
    #    perturbing the run), and each job's JCT is decomposed into its
    #    critical-path segments.
    jobs = WorkloadGenerator(
        seed=0, input_size_range=(4.0, 8.0), map_rate=8.0, reduce_rate=8.0
    ).make_workload(3, interarrival=0.3)
    simulator = MapReduceSimulator(
        topology,
        make_scheduler("hit-online", seed=0),
        jobs,
        SimulationConfig(seed=0, timeline_dt=0.1),
    )
    metrics = simulator.run()
    print(f"\nsimulated {len(metrics.jobs)} jobs; "
          f"mean JCT {metrics.mean_jct():.3f}")
    print()
    print(format_critical_path({"hit-online": attribute_run(metrics)}))

    # 10. Export the run as a Chrome trace-event file — drop it onto
    #     https://ui.perfetto.dev to browse tasks, flows and gauge tracks.
    trace = save_chrome_trace(
        "quickstart_trace.json", metrics, simulator.timeline,
        scheduler="hit-online",
    )
    problems = validate_chrome_trace(trace)
    assert not problems, problems
    print(f"\nperfetto trace: quickstart_trace.json "
          f"({len(trace['traceEvents'])} events, "
          f"{len(simulator.timeline.samples)} timeline samples)")


if __name__ == "__main__":
    main()
