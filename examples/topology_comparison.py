#!/usr/bin/env python
"""Scheduler behaviour across data-center architectures (paper Figure 8b).

Places the same shuffle-heavy workload on four fabrics — canonical Tree,
Fat-Tree, VL2 and BCube — with each scheduler, and prints the shuffle cost
(size x traversed switches) plus the average route length.

Run:  python examples/topology_comparison.py
"""

from repro.analysis import format_table
from repro.experiments import build_static_workload, configs, run_static_placement
from repro.mapreduce import ShuffleClass, WorkloadGenerator
from repro.schedulers import make_scheduler


def main() -> None:
    generator = WorkloadGenerator(seed=3, input_size_range=(8.0, 16.0))
    jobs = generator.jobs_of_class(ShuffleClass.HEAVY, 4)
    print(f"workload: {len(jobs)} shuffle-heavy jobs, "
          f"{sum(j.shuffle_volume for j in jobs):.0f} GB shuffled\n")

    rows = []
    for arch_name, topology in configs.architectures_64().items():
        workload = build_static_workload(topology, jobs, seed=3)
        entry = [arch_name, f"{topology.num_servers}s/{topology.num_switches}w"]
        for scheduler_name in ("capacity", "pna", "hit"):
            result = run_static_placement(
                workload, make_scheduler(scheduler_name, seed=3), seed=3
            )
            entry.append(result.shuffle_cost)
        rows.append(tuple(entry))

    print(format_table(
        ("architecture", "size", "capacity cost", "pna cost", "hit cost"),
        rows,
        title="== shuffle cost per architecture (paper Figure 8b) ==",
        float_fmt="{:.1f}",
    ))
    print(
        "\nHit-Scheduler wins on every fabric; the canonical tree fits the"
        "\nmap-and-reduce traffic pattern best (lowest absolute Hit cost),"
        "\nmatching the paper's observation in Section 7.3."
    )


if __name__ == "__main__":
    main()
