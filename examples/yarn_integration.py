#!/usr/bin/env python
"""The Section 6 integration flow: TAA optimisation -> YARN plumbing.

Demonstrates how the paper's implementation wires Hit-Scheduler into Hadoop:

1. offline phase — profile the job's shuffle (here: the shuffle matrix) and
   run the TAA optimisation;
2. populate ``mapred.job.topologyaware.taskdict`` with each task's preferred
   host;
3. the ApplicationMaster emits ``Hit-ResourceRequest``s whose resource-name
   is the preferred host;
4. the ResourceManager grants containers on those hosts (falling back to the
   nearest feasible node when one is full).

Run:  python examples/yarn_integration.py
"""

from repro.cluster import Container, Resources, TaskKind, TaskRef
from repro.core import HitConfig, HitOptimizer, TAAInstance
from repro.mapreduce import JobSpec, ShuffleClass, build_flows
from repro.topology import TreeConfig, build_tree
from repro.yarnsim import (
    ApplicationMaster,
    ResourceManager,
    TopologyAwareTaskDict,
)


def main() -> None:
    topology = build_tree(
        TreeConfig(depth=2, fanout=4, redundancy=2, server_resources=(2.0,))
    )
    job = JobSpec(
        job_id=0,
        name="index-demo",
        shuffle_class=ShuffleClass.HEAVY,
        num_maps=6,
        num_reduces=2,
        input_size=6.0,
        shuffle_ratio=0.95,
    )

    # --- offline phase: TAA optimisation on a planning instance -----------
    demand = Resources(memory=1.0)
    containers, map_ids, reduce_ids = [], [], []
    cid = 0
    for i in range(job.num_maps):
        containers.append(Container(cid, demand, TaskRef(0, TaskKind.MAP, i)))
        map_ids.append(cid)
        cid += 1
    for i in range(job.num_reduces):
        containers.append(Container(cid, demand, TaskRef(0, TaskKind.REDUCE, i)))
        reduce_ids.append(cid)
        cid += 1
    taa = TAAInstance(topology, containers, build_flows(job, map_ids, reduce_ids))
    result = HitOptimizer(taa, HitConfig(seed=0)).optimize_initial_wave()
    print(f"offline TAA optimisation: cost {result.initial_cost:.2f} -> "
          f"{result.final_cost:.2f} ({result.improvement:.0%} better)")

    # --- mapred.job.topologyaware.taskdict ---------------------------------
    taskdict = TopologyAwareTaskDict.from_placement(
        taa.cluster, topology, result.placement
    )
    print(f"taskdict: {len(taskdict)} preferred hosts recorded")

    # --- online phase: AM asks the RM with Hit-ResourceRequests ------------
    rm = ResourceManager(topology)
    am = ApplicationMaster(
        rm=rm, job=job, container_capability=demand, taskdict=taskdict
    )
    granted = am.acquire_containers()

    print("\ntask -> granted container host (preferred host honoured):")
    hits = 0
    for task_key in sorted(granted):
        grant = granted[task_key]
        preferred = None
        for c in taa.cluster.containers():
            if str(c.task) == task_key:
                preferred = topology.server(c.server_id).name
        match = "==" if grant.hostname == preferred else "!="
        hits += grant.hostname == preferred
        print(f"  {task_key:10s} -> {grant.hostname:6s} {match} {preferred}")
    print(f"\n{hits}/{len(granted)} grants landed on the TAA-preferred host.")
    am.release_all()


if __name__ == "__main__":
    main()
