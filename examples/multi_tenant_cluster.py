#!/usr/bin/env python
"""Multi-tenant cluster simulation: the paper's testbed experiment in small.

Runs the Table-1 PUMA-like workload mix through the discrete-event simulator
under all three schedulers (Capacity, Probabilistic Network-Aware, Hit) and
prints the Figure 6/7 metrics: mean job completion time, map/reduce task
times, average shuffle route length and delay.

Run:  python examples/multi_tenant_cluster.py [num_jobs]
"""

import sys

from repro.analysis import format_table
from repro.analysis.stats import improvement
from repro.experiments import configs
from repro.schedulers import make_scheduler
from repro.simulator import run_simulation


def main(num_jobs: int = 12) -> None:
    jobs = configs.testbed_workload(seed=7, num_jobs=num_jobs)
    heavy = sum(1 for j in jobs if j.shuffle_class.value == "shuffle-heavy")
    print(
        f"workload: {num_jobs} jobs from the Table-1 mix "
        f"({heavy} shuffle-heavy), 64-server tree, 3 slots per server\n"
    )

    rows = []
    summaries = {}
    for name in ("capacity", "pna", "hit"):
        topology = configs.testbed_tree()
        metrics = run_simulation(
            topology,
            make_scheduler(name, seed=7),
            jobs,
            configs.testbed_simulation_config(seed=7),
        )
        s = metrics.summary()
        summaries[name] = s
        rows.append((
            name,
            s["mean_jct"],
            float(metrics.task_durations("map").mean()),
            float(metrics.task_durations("reduce").mean()),
            s["avg_route_hops"],
            s["avg_shuffle_delay_us"],
        ))

    print(format_table(
        ("scheduler", "mean JCT", "map time", "reduce time",
         "route hops", "delay (us)"),
        rows,
        title="== scheduler comparison (paper Figures 6 & 7) ==",
    ))
    print()
    print(f"Hit vs Capacity JCT improvement: "
          f"{improvement(summaries['capacity']['mean_jct'], summaries['hit']['mean_jct']):.1%}"
          f"   (paper: ~28%)")
    print(f"Hit vs PNA JCT improvement:      "
          f"{improvement(summaries['pna']['mean_jct'], summaries['hit']['mean_jct']):.1%}"
          f"   (paper: ~11%)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
